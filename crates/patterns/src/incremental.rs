//! Incremental (streaming) mining and metric aggregation.
//!
//! The post-mortem pipeline scans a complete [`RuntimeProfile`]
//! (`mine_patterns` → `compute_metrics` → `thread_profile` → `regularity`).
//! Every quantity those passes produce is in fact *foldable*: it can be
//! maintained one event at a time with O(1) state per (thread, track) plus
//! the list of finalized pattern instances. This module provides those folds
//! — and the batch passes in [`crate::run`], [`crate::analysis`] and
//! [`crate::threads`] are re-expressed *in terms of them*, so streaming and
//! post-mortem analysis agree by construction, not by parallel maintenance
//! of two copies of the same logic.
//!
//! The only state that grows with the profile is the finalized-pattern list
//! (optionally capped, see [`IncrementalAnalyzer::with_pattern_cap`]) and
//! the sequence numbers of `Sort` events (needed for the Sort-After-Insert
//! metric; sorts are rare). Raw events are never retained.
//!
//! [`RuntimeProfile`]: dsspy_events::RuntimeProfile

use std::collections::{HashMap, VecDeque};

use dsspy_events::{AccessClass, AccessEvent, AccessKind, ThreadTag};

use crate::analysis::{Metrics, ProfileAnalysis, LONG_READ_COVERAGE};
use crate::kind::PatternKind;
use crate::regularity::{RegularityConfig, RegularityVerdict};
use crate::run::{MinerConfig, PatternInstance};
use crate::threads::ThreadProfile;

/// Which track an event belongs to (read, write, insert, delete).
pub(crate) fn track_of(kind: AccessKind) -> Option<usize> {
    match kind {
        AccessKind::Read => Some(0),
        AccessKind::Write => Some(1),
        AccessKind::Insert => Some(2),
        AccessKind::Delete => Some(3),
        _ => None,
    }
}

/// Whether an insert event landed at the front of the structure.
fn insert_at_front(e: &AccessEvent) -> bool {
    e.index() == Some(0)
}

/// Whether an insert event was appended at the back. At insert time `len`
/// is the *new* length, so an append has `index == len - 1`.
fn insert_at_back(e: &AccessEvent) -> bool {
    match e.index() {
        Some(i) => e.len > 0 && i == e.len - 1,
        None => false,
    }
}

/// Whether a delete event removed the front element.
fn delete_at_front(e: &AccessEvent) -> bool {
    e.index() == Some(0)
}

/// Whether a delete event removed the back element. At delete time `len` is
/// the *new* (shrunk) length, so a back-removal has `index == len`.
fn delete_at_back(e: &AccessEvent) -> bool {
    e.index() == Some(e.len)
}

/// Direction state of a read/write run.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Dir {
    Unknown,
    Forward,
    Backward,
}

/// Compact accumulator for one in-progress run.
///
/// Emitting a [`PatternInstance`] only ever needs aggregate facts about the
/// run's events — first/last timestamps, length, index extent, peak
/// structure length, direction, end viability and the previous index — so
/// the accumulator stores exactly those. O(1) per track, which is what
/// bounds streaming memory.
#[derive(Clone, Copy, Debug)]
struct TrackAcc {
    len: usize,
    first_seq: u64,
    first_nanos: u64,
    last_seq: u64,
    last_nanos: u64,
    lo: u32,
    hi: u32,
    max_struct_len: u32,
    last_index: u32,
    dir: Dir,
    // For insert/delete tracks: which end-classifications are still viable.
    front_ok: bool,
    back_ok: bool,
}

impl TrackAcc {
    fn new() -> TrackAcc {
        TrackAcc {
            len: 0,
            first_seq: 0,
            first_nanos: 0,
            last_seq: 0,
            last_nanos: 0,
            lo: u32::MAX,
            hi: 0,
            max_struct_len: 0,
            last_index: 0,
            dir: Dir::Unknown,
            front_ok: true,
            back_ok: true,
        }
    }

    /// Index of the last event in the run, if the run is non-empty. Every
    /// event that enters a track carries an index (index-less positional
    /// events break the run before this point).
    fn last_index(&self) -> Option<u32> {
        (self.len > 0).then_some(self.last_index)
    }

    fn push(&mut self, e: &AccessEvent, idx: u32) {
        if self.len == 0 {
            self.first_seq = e.seq;
            self.first_nanos = e.nanos;
        }
        self.len += 1;
        self.last_seq = e.seq;
        self.last_nanos = e.nanos;
        self.lo = self.lo.min(idx);
        self.hi = self.hi.max(idx);
        self.max_struct_len = self.max_struct_len.max(e.len);
        self.last_index = idx;
    }

    fn emit(
        &mut self,
        kind: Option<PatternKind>,
        min_len: usize,
        thread: ThreadTag,
        sink: &mut impl FnMut(PatternInstance),
    ) {
        if self.len >= min_len {
            if let Some(kind) = kind {
                sink(PatternInstance {
                    kind,
                    thread,
                    first_seq: self.first_seq,
                    last_seq: self.last_seq,
                    first_nanos: self.first_nanos,
                    last_nanos: self.last_nanos,
                    len: self.len,
                    lo: if self.lo == u32::MAX { 0 } else { self.lo },
                    hi: self.hi,
                    max_struct_len: self.max_struct_len,
                });
            }
        }
        *self = TrackAcc::new();
    }
}

/// The per-thread four-track run state machine.
///
/// This *is* the miner: [`crate::run::mine_patterns`] drives one
/// `ThreadMiner` per thread over the complete per-thread slices, the
/// streaming analyzer drives the same machine one event at a time. Both see
/// identical emissions because they are the same code.
#[derive(Clone, Debug)]
pub struct ThreadMiner {
    thread: ThreadTag,
    // One accumulator per track: read, write, insert, delete.
    accs: [TrackAcc; 4],
}

impl ThreadMiner {
    /// A fresh miner for one thread's event stream.
    pub fn new(thread: ThreadTag) -> ThreadMiner {
        ThreadMiner {
            thread,
            accs: [
                TrackAcc::new(),
                TrackAcc::new(),
                TrackAcc::new(),
                TrackAcc::new(),
            ],
        }
    }

    /// The thread this miner segments.
    pub fn thread(&self) -> ThreadTag {
        self.thread
    }

    fn kind_of(track: usize, acc: &TrackAcc) -> Option<PatternKind> {
        match track {
            // Read/write runs classify by direction.
            0 => match acc.dir {
                Dir::Forward => Some(PatternKind::ReadForward),
                Dir::Backward => Some(PatternKind::ReadBackward),
                Dir::Unknown => None,
            },
            1 => match acc.dir {
                Dir::Forward => Some(PatternKind::WriteForward),
                Dir::Backward => Some(PatternKind::WriteBackward),
                Dir::Unknown => None,
            },
            // Prefer the back classification: appending is by far the common
            // case, and a run of appends to an initially empty list satisfies
            // both predicates on its first event.
            2 => {
                if acc.back_ok {
                    Some(PatternKind::InsertBack)
                } else if acc.front_ok {
                    Some(PatternKind::InsertFront)
                } else {
                    None
                }
            }
            _ => {
                if acc.back_ok {
                    Some(PatternKind::DeleteBack)
                } else if acc.front_ok {
                    Some(PatternKind::DeleteFront)
                } else {
                    None
                }
            }
        }
    }

    fn emit_track(&mut self, track: usize, min_len: usize, sink: &mut impl FnMut(PatternInstance)) {
        let kind = Self::kind_of(track, &self.accs[track]);
        self.accs[track].emit(kind, min_len, self.thread, sink);
    }

    /// Advance the machine by one event, emitting any run the event closes.
    ///
    /// Compound kinds (Search, Sort, Clear, ...) live outside the positional
    /// tracks and are transparent. Events must arrive in the thread's
    /// chronological order.
    pub fn push(
        &mut self,
        e: &AccessEvent,
        min_len: usize,
        sink: &mut impl FnMut(PatternInstance),
    ) {
        let Some(track) = track_of(e.kind) else {
            return; // compound events live outside the positional tracks
        };
        let Some(idx) = e.index() else {
            // Positional kind without an index (shouldn't happen from our
            // wrappers, but profiles may come from elsewhere): break the run.
            self.emit_track(track, min_len, sink);
            return;
        };

        match track {
            0 | 1 => {
                // Read/Write tracks: adjacent monotone indices.
                let acc = &self.accs[track];
                let extend = match acc.last_index() {
                    None => true,
                    Some(prev) => match acc.dir {
                        Dir::Unknown => idx == prev + 1 || (prev > 0 && idx == prev - 1),
                        Dir::Forward => idx == prev + 1,
                        Dir::Backward => prev > 0 && idx == prev - 1,
                    },
                };
                if !extend {
                    // Runs are disjoint: the breaker starts a fresh run, it
                    // does not chain with the old run's tail.
                    self.emit_track(track, min_len, sink);
                }
                let acc = &mut self.accs[track];
                if let Some(prev) = acc.last_index() {
                    if acc.dir == Dir::Unknown {
                        acc.dir = if idx == prev + 1 {
                            Dir::Forward
                        } else {
                            Dir::Backward
                        };
                    }
                }
                acc.push(e, idx);
            }
            2 => {
                let front = insert_at_front(e);
                let back = insert_at_back(e);
                let acc = &self.accs[2];
                let new_front = acc.front_ok && front;
                let new_back = acc.back_ok && back;
                let compatible = (new_front || new_back) && (front || back);
                // Additionally, a back-run must be *contiguous*: each append
                // lands one past the previous one. A Clear between appends
                // resets the index to 0, which (by front/back flags alone)
                // could still look front-compatible; require monotone growth
                // for back runs so refill phases separate.
                let contiguous = match acc.last_index() {
                    // Front inserts always land at 0, so only back runs are
                    // constrained.
                    Some(prev) if new_back => idx == prev + 1,
                    _ => true,
                };
                if acc.len == 0 {
                    if front || back {
                        let acc = &mut self.accs[2];
                        acc.front_ok = front;
                        acc.back_ok = back;
                        acc.push(e, idx);
                    }
                    // Middle inserts never start a run.
                } else if compatible && contiguous {
                    let acc = &mut self.accs[2];
                    acc.front_ok = new_front;
                    acc.back_ok = new_back;
                    acc.push(e, idx);
                } else {
                    self.emit_track(2, min_len, sink);
                    if front || back {
                        let acc = &mut self.accs[2];
                        acc.front_ok = front;
                        acc.back_ok = back;
                        acc.push(e, idx);
                    }
                }
            }
            _ => {
                let front = delete_at_front(e);
                let back = delete_at_back(e);
                let acc = &self.accs[3];
                let new_front = acc.front_ok && front;
                let new_back = acc.back_ok && back;
                if acc.len == 0 {
                    if front || back {
                        let acc = &mut self.accs[3];
                        acc.front_ok = front;
                        acc.back_ok = back;
                        acc.push(e, idx);
                    }
                } else if new_front || new_back {
                    let acc = &mut self.accs[3];
                    acc.front_ok = new_front;
                    acc.back_ok = new_back;
                    acc.push(e, idx);
                } else {
                    self.emit_track(3, min_len, sink);
                    if front || back {
                        let acc = &mut self.accs[3];
                        acc.front_ok = front;
                        acc.back_ok = back;
                        acc.push(e, idx);
                    }
                }
            }
        }
    }

    /// End-of-stream: emit whatever runs are still open, in track order.
    pub fn flush(&mut self, min_len: usize, sink: &mut impl FnMut(PatternInstance)) {
        for track in 0..4 {
            self.emit_track(track, min_len, sink);
        }
    }
}

/// Foldable aggregates over finalized [`PatternInstance`]s: everything the
/// metric and regularity passes need from the pattern list, maintained O(1)
/// per emission so the pattern list itself may be capped or dropped.
#[derive(Clone, Debug, Default)]
pub struct PatternAggregates {
    /// Instances per pattern kind, indexed by [`PatternKind::ALL`] position.
    counts: [usize; 8],
    /// Longest run per pattern kind (events).
    max_run_len: [usize; 8],
    insert_pattern_count: usize,
    longest_insert_run: usize,
    insert_runtime: u64,
    insert_events: usize,
    read_pattern_count: usize,
    long_read_pattern_count: usize,
    events_in_read_patterns: usize,
    min_insert_last_seq: Option<u64>,
}

impl PatternAggregates {
    /// Fold one finalized pattern instance.
    pub fn add(&mut self, p: &PatternInstance) {
        let slot = PatternKind::ALL
            .iter()
            .position(|k| *k == p.kind)
            .expect("PatternKind::ALL covers every kind");
        self.counts[slot] += 1;
        self.max_run_len[slot] = self.max_run_len[slot].max(p.len);
        if p.kind.is_insert() {
            self.insert_pattern_count += 1;
            self.longest_insert_run = self.longest_insert_run.max(p.len);
            self.insert_runtime += p.duration_nanos();
            self.insert_events += p.len;
            self.min_insert_last_seq = Some(
                self.min_insert_last_seq
                    .map_or(p.last_seq, |s| s.min(p.last_seq)),
            );
        }
        if p.kind.is_read() {
            self.read_pattern_count += 1;
            self.events_in_read_patterns += p.len;
            if p.coverage() >= LONG_READ_COVERAGE {
                self.long_read_pattern_count += 1;
            }
        }
    }

    /// The regularity gate (Table II) computed from the aggregates — equal
    /// to [`crate::regularity::regularity`] over the full pattern list.
    pub fn regularity(&self, config: &RegularityConfig) -> RegularityVerdict {
        let mut kinds = Vec::new();
        for (i, kind) in PatternKind::ALL.iter().enumerate() {
            let recurring = self.counts[i] >= config.min_recurrences;
            let single_long = self.counts[i] > 0 && self.max_run_len[i] >= config.min_single_run;
            if recurring || single_long {
                kinds.push(*kind);
            }
        }
        if kinds.is_empty() {
            RegularityVerdict::Irregular
        } else {
            RegularityVerdict::Regular(kinds)
        }
    }
}

/// Foldable raw-event aggregates: one `fold` call per event maintains every
/// per-event quantity of [`Metrics`]; [`MetricsFold::finish`] combines them
/// with [`PatternAggregates`] into the exact batch metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsFold {
    total_events: usize,
    by_kind: [usize; 11],
    reads: usize,
    writes: usize,
    max_struct_len: u32,
    first_nanos: Option<u64>,
    last_nanos: u64,
    read_or_search: usize,
    positional: usize,
    front: usize,
    back: usize,
    insert_front: usize,
    insert_back: usize,
    delete_front: usize,
    delete_back: usize,
    insert_ops: usize,
    delete_ops: usize,
    resize_ops: usize,
    sort_ops: usize,
    search_ops: usize,
    insert_delete_alternations: usize,
    last_mut_was_insert: Option<bool>,
    // Trailing-unread-writes state machine: Writes since the last event that
    // was neither a Write nor transparent teardown (Clear/Delete). Equal to
    // the batch pass's backward scan at any prefix.
    trailing_unread_writes: usize,
    // Sequence numbers of Sort events, in arrival order. Needed because the
    // earliest insert-pattern end is only known at snapshot time. Sorts are
    // rare, so this is the one per-event-kind list we keep.
    sort_seqs: Vec<u64>,
}

impl MetricsFold {
    /// Fold one event (events must arrive in profile order).
    pub fn fold(&mut self, e: &AccessEvent) {
        self.total_events += 1;
        if self.first_nanos.is_none() {
            self.first_nanos = Some(e.nanos);
        }
        self.last_nanos = e.nanos;
        self.by_kind[e.kind as usize] += 1;
        match e.class() {
            AccessClass::Read => self.reads += 1,
            AccessClass::Write => self.writes += 1,
        }
        self.max_struct_len = self.max_struct_len.max(e.len);
        if matches!(e.kind, AccessKind::Read | AccessKind::Search) {
            self.read_or_search += 1;
        }
        match e.kind {
            AccessKind::Insert => {
                self.insert_ops += 1;
                if self.last_mut_was_insert == Some(false) {
                    self.insert_delete_alternations += 1;
                }
                self.last_mut_was_insert = Some(true);
            }
            AccessKind::Delete => {
                self.delete_ops += 1;
                if self.last_mut_was_insert == Some(true) {
                    self.insert_delete_alternations += 1;
                }
                self.last_mut_was_insert = Some(false);
            }
            AccessKind::Resize => self.resize_ops += 1,
            AccessKind::Sort => {
                self.sort_ops += 1;
                self.sort_seqs.push(e.seq);
            }
            AccessKind::Search => self.search_ops += 1,
            _ => {}
        }
        if e.kind.is_positional() {
            if let Some(i) = e.index() {
                self.positional += 1;
                // "Front" is index 0. "Back" is the last position, whose
                // encoding depends on the operation: appends have
                // i == len - 1, back-deletes have i == len (post-shrink).
                let at_front = i == 0;
                let at_back = match e.kind {
                    AccessKind::Delete => i == e.len,
                    _ => e.len > 0 && i == e.len - 1,
                };
                if at_front {
                    self.front += 1;
                }
                if at_back {
                    self.back += 1;
                }
                match e.kind {
                    AccessKind::Insert => {
                        if at_front && !at_back {
                            self.insert_front += 1;
                        } else if at_back {
                            self.insert_back += 1;
                        }
                    }
                    AccessKind::Delete => {
                        if at_front && !at_back {
                            self.delete_front += 1;
                        } else if at_back {
                            self.delete_back += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        // Write-Without-Read: count the trailing run of explicit element
        // overwrites ("all entries might be set to NULL", §III-B). Deletes
        // and whole-structure maintenance (Clear) are transparent — a
        // structure drained or cleared at end of life is normal teardown.
        match e.kind {
            AccessKind::Write => self.trailing_unread_writes += 1,
            AccessKind::Clear | AccessKind::Delete => {}
            _ => self.trailing_unread_writes = 0,
        }
    }

    /// Combine the per-event aggregates with the pattern aggregates into
    /// the exact [`Metrics`] the batch pass computes.
    pub fn finish(&self, patterns: &PatternAggregates) -> Metrics {
        let mut m = Metrics {
            total_events: self.total_events,
            duration_nanos: self
                .first_nanos
                .map_or(0, |first| self.last_nanos.saturating_sub(first)),
            ..Metrics::default()
        };
        m.by_kind = self.by_kind;
        m.reads = self.reads;
        m.writes = self.writes;
        m.max_struct_len = self.max_struct_len;
        m.insert_ops = self.insert_ops;
        m.delete_ops = self.delete_ops;
        m.resize_ops = self.resize_ops;
        m.sort_ops = self.sort_ops;
        m.search_ops = self.search_ops;
        m.insert_delete_alternations = self.insert_delete_alternations;
        m.trailing_unread_writes = self.trailing_unread_writes;

        if m.total_events > 0 {
            m.read_or_search_share = self.read_or_search as f64 / m.total_events as f64;
        }
        if self.positional > 0 {
            m.front_share = self.front as f64 / self.positional as f64;
            m.back_share = self.back as f64 / self.positional as f64;
        }

        // Two-different-ends: growth concentrates on one end, shrink (or
        // reads) on the other. Compare dominant insert end vs dominant
        // delete end.
        if m.insert_ops >= 1 && m.delete_ops >= 1 {
            let ins_front_dominant = self.insert_front > self.insert_back;
            let del_front_dominant = self.delete_front > self.delete_back;
            let ins_decided = self.insert_front != self.insert_back;
            let del_decided = self.delete_front != self.delete_back;
            if ins_decided && del_decided {
                m.two_ended = ins_front_dominant != del_front_dominant;
                m.common_end = ins_front_dominant == del_front_dominant;
            } else if !ins_decided && !del_decided && m.insert_ops + m.delete_ops > 0 {
                // Degenerate single-element churn: treat as common end.
                m.common_end = self.insert_front + self.delete_front > 0;
            }
            // Strictness for SI: *always* a common end means no stray
            // middle/other-end mutations at all.
            let stray_inserts = m.insert_ops - self.insert_front - self.insert_back;
            let stray_deletes = m.delete_ops - self.delete_front - self.delete_back;
            if stray_inserts > 0 || stray_deletes > 0 {
                m.common_end = false;
            }
        }

        // --- pattern-level aggregates ------------------------------------
        m.insert_pattern_count = patterns.insert_pattern_count;
        m.longest_insert_run = patterns.longest_insert_run;
        m.read_pattern_count = patterns.read_pattern_count;
        m.long_read_pattern_count = patterns.long_read_pattern_count;
        if m.total_events > 0 {
            m.read_pattern_event_share =
                patterns.events_in_read_patterns as f64 / m.total_events as f64;
        }
        m.insert_phase_share = if m.duration_nanos > 0 {
            (patterns.insert_runtime as f64 / m.duration_nanos as f64).min(1.0)
        } else if m.total_events > 0 {
            patterns.insert_events as f64 / m.total_events as f64
        } else {
            0.0
        };

        // Sort-After-Insert: a Sort event whose seq is after the end of some
        // insertion pattern.
        if m.sort_ops > 0 {
            if let Some(ins_end) = patterns.min_insert_last_seq {
                m.sorts_after_insert = self.sort_seqs.iter().filter(|&&s| s > ins_end).count();
            }
        }

        m
    }
}

/// Foldable thread-interaction facts ([`ThreadProfile`]).
#[derive(Clone, Debug, Default)]
pub struct ThreadFold {
    per_thread: HashMap<ThreadTag, usize>,
    switches: usize,
    prev: Option<ThreadTag>,
}

impl ThreadFold {
    /// Fold one event (events must arrive in profile order).
    pub fn fold(&mut self, e: &AccessEvent) {
        *self.per_thread.entry(e.thread).or_default() += 1;
        if let Some(p) = self.prev {
            if p != e.thread {
                self.switches += 1;
            }
        }
        self.prev = Some(e.thread);
    }

    /// The [`ThreadProfile`] of everything folded so far.
    pub fn snapshot(&self) -> ThreadProfile {
        let mut events_per_thread: Vec<(ThreadTag, usize)> =
            self.per_thread.iter().map(|(t, n)| (*t, *n)).collect();
        events_per_thread.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total: usize = events_per_thread.iter().map(|(_, n)| n).sum();
        let dominant_share = events_per_thread
            .first()
            .map(|(_, n)| *n as f64 / total.max(1) as f64)
            .unwrap_or(0.0);
        ThreadProfile {
            thread_count: events_per_thread.len(),
            events_per_thread,
            switches: self.switches,
            dominant_share,
        }
    }
}

/// One instance's complete incremental analysis state: per-thread miners,
/// finalized patterns (+ aggregates), metric and thread folds.
///
/// Fold events with [`IncrementalAnalyzer::fold`]; take an exact
/// [`ProfileAnalysis`] + regularity verdict at any point with
/// [`IncrementalAnalyzer::snapshot`] — open runs are *virtually* flushed
/// (on clones of the compact accumulators), mirroring the batch miner's
/// end-of-profile flush, so a snapshot after the last event equals the
/// post-mortem analysis of the same events exactly.
#[derive(Clone, Debug)]
pub struct IncrementalAnalyzer {
    min_len: usize,
    miners: HashMap<ThreadTag, ThreadMiner>,
    finalized: VecDeque<PatternInstance>,
    retain_cap: usize,
    dropped_patterns: u64,
    aggs: PatternAggregates,
    metrics: MetricsFold,
    threads: ThreadFold,
    last_seq: Option<u64>,
    out_of_order: u64,
}

impl IncrementalAnalyzer {
    /// Fresh state with the given miner configuration and unlimited pattern
    /// retention (required for byte-for-byte pattern-list equality).
    pub fn new(config: &MinerConfig) -> IncrementalAnalyzer {
        IncrementalAnalyzer {
            min_len: config.min_run_len.max(2),
            miners: HashMap::new(),
            finalized: VecDeque::new(),
            retain_cap: usize::MAX,
            dropped_patterns: 0,
            aggs: PatternAggregates::default(),
            metrics: MetricsFold::default(),
            threads: ThreadFold::default(),
            last_seq: None,
            out_of_order: 0,
        }
    }

    /// Cap the retained finalized-pattern list at `cap` instances (`0` =
    /// unlimited), dropping the *oldest* beyond it. Metrics, regularity and
    /// classification stay exact (they read the aggregates); only the
    /// pattern list in snapshots is truncated.
    pub fn with_pattern_cap(mut self, cap: usize) -> IncrementalAnalyzer {
        self.retain_cap = if cap == 0 { usize::MAX } else { cap };
        self
    }

    /// Fold one event. Events must arrive in profile (sequence) order;
    /// inversions are counted, not repaired.
    pub fn fold(&mut self, e: &AccessEvent) {
        if let Some(prev) = self.last_seq {
            if e.seq < prev {
                self.out_of_order += 1;
            }
        }
        self.last_seq = Some(e.seq);
        self.metrics.fold(e);
        self.threads.fold(e);
        let miner = self
            .miners
            .entry(e.thread)
            .or_insert_with(|| ThreadMiner::new(e.thread));
        let aggs = &mut self.aggs;
        let finalized = &mut self.finalized;
        let cap = self.retain_cap;
        let dropped = &mut self.dropped_patterns;
        miner.push(e, self.min_len, &mut |p| {
            aggs.add(&p);
            finalized.push_back(p);
            if finalized.len() > cap {
                finalized.pop_front();
                *dropped += 1;
            }
        });
    }

    /// Events folded so far.
    pub fn event_count(&self) -> usize {
        self.metrics.total_events
    }

    /// Sequence-order inversions observed (0 for any collector-fed stream).
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Finalized patterns evicted by the retention cap.
    pub fn dropped_patterns(&self) -> u64 {
        self.dropped_patterns
    }

    /// Exact analysis of everything folded so far.
    ///
    /// Open runs are flushed on clones (the live accumulators keep
    /// extending), mirroring the batch miner's end-of-profile flush: a
    /// snapshot taken after the final event is equal to
    /// [`crate::analysis::analyze`] over the same events — including the
    /// pattern list, provided no retention cap dropped instances and
    /// sequence numbers are unique (always true for session captures).
    pub fn snapshot(&self, regularity: &RegularityConfig) -> (ProfileAnalysis, RegularityVerdict) {
        let mut patterns: Vec<PatternInstance> = self.finalized.iter().copied().collect();
        let mut aggs = self.aggs.clone();
        // Virtual end-of-stream flush, threads ascending like the batch
        // miner.
        let mut tags: Vec<ThreadTag> = self.miners.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            let mut miner = self.miners[&tag].clone();
            miner.flush(self.min_len, &mut |p| {
                aggs.add(&p);
                patterns.push(p);
            });
        }
        patterns.sort_by_key(|p| p.first_seq);
        let verdict = aggs.regularity(regularity);
        let metrics = self.metrics.finish(&aggs);
        let threads = self.threads.snapshot();
        (
            ProfileAnalysis {
                patterns,
                metrics,
                threads,
            },
            verdict,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::regularity::regularity;
    use dsspy_events::{AllocationSite, DsKind, InstanceId, InstanceInfo, RuntimeProfile, Target};

    fn profile(events: Vec<AccessEvent>) -> RuntimeProfile {
        RuntimeProfile::new(
            InstanceInfo::new(
                InstanceId(0),
                AllocationSite::new("T", "m", 1),
                DsKind::List,
                "i32",
            ),
            events,
        )
    }

    fn assert_converges(events: Vec<AccessEvent>) {
        let p = profile(events);
        let miner_cfg = MinerConfig::default();
        let reg_cfg = RegularityConfig::default();
        let batch = analyze(&p, &miner_cfg);
        let batch_verdict = regularity(&batch, &reg_cfg);

        let mut inc = IncrementalAnalyzer::new(&miner_cfg);
        for e in &p.events {
            inc.fold(e);
        }
        let (streamed, verdict) = inc.snapshot(&reg_cfg);

        assert_eq!(streamed.patterns, batch.patterns);
        assert_eq!(
            serde_json::to_string(&streamed.metrics).unwrap(),
            serde_json::to_string(&batch.metrics).unwrap()
        );
        assert_eq!(streamed.threads, batch.threads);
        assert_eq!(verdict, batch_verdict);
    }

    fn ev(seq: u64, kind: AccessKind, idx: u32, len: u32) -> AccessEvent {
        AccessEvent::at(seq, kind, idx, len)
    }

    #[test]
    fn converges_on_fill_then_scan() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..100u32 {
            events.push(ev(seq, AccessKind::Insert, i, i + 1));
            seq += 1;
        }
        for i in 0..100u32 {
            events.push(ev(seq, AccessKind::Read, i, 100));
            seq += 1;
        }
        assert_converges(events);
    }

    #[test]
    fn converges_on_queue_churn_with_sort_and_search() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut len = 0u32;
        for round in 0..40 {
            events.push(ev(seq, AccessKind::Insert, len, len + 1));
            len += 1;
            seq += 1;
            if round % 3 == 0 && len > 1 {
                len -= 1;
                events.push(ev(seq, AccessKind::Delete, 0, len));
                seq += 1;
            }
            if round % 7 == 0 {
                events.push(AccessEvent::whole(seq, AccessKind::Sort, len));
                seq += 1;
                events.push(AccessEvent {
                    seq: seq + 1,
                    nanos: seq + 1,
                    kind: AccessKind::Search,
                    target: Target::Range { start: 0, end: len },
                    len,
                    thread: ThreadTag::MAIN,
                });
                seq += 2;
            }
        }
        assert_converges(events);
    }

    #[test]
    fn converges_on_multithreaded_interleaving() {
        let mut events = Vec::new();
        for i in 0..60u32 {
            let mut a = ev(u64::from(3 * i), AccessKind::Read, i, 60);
            a.thread = ThreadTag(1);
            events.push(a);
            let mut b = ev(u64::from(3 * i + 1), AccessKind::Read, 59 - i, 60);
            b.thread = ThreadTag(2);
            events.push(b);
            let mut c = ev(u64::from(3 * i + 2), AccessKind::Write, i, 60);
            c.thread = ThreadTag(3);
            events.push(c);
        }
        assert_converges(events);
    }

    #[test]
    fn converges_on_empty_and_tiny_profiles() {
        assert_converges(vec![]);
        assert_converges(vec![ev(0, AccessKind::Read, 5, 10)]);
        assert_converges(vec![
            ev(0, AccessKind::Write, 3, 10),
            ev(1, AccessKind::Write, 4, 10),
        ]);
    }

    #[test]
    fn converges_on_trailing_writes_and_clears() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..20u32 {
            events.push(ev(seq, AccessKind::Insert, i, i + 1));
            seq += 1;
        }
        events.push(AccessEvent::whole(seq, AccessKind::Clear, 20));
        seq += 1;
        for i in 0..6u32 {
            events.push(ev(seq, AccessKind::Write, i, 20));
            seq += 1;
        }
        events.push(AccessEvent::whole(seq, AccessKind::Clear, 20));
        assert_converges(events);
    }

    #[test]
    fn mid_stream_snapshot_equals_batch_prefix_analysis() {
        // Snapshot after k events == batch analysis of the first k events,
        // for every k — the virtual flush makes prefixes exact too.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..30u32 {
            events.push(ev(seq, AccessKind::Insert, i, i + 1));
            seq += 1;
            events.push(ev(seq, AccessKind::Read, i / 2, i + 1));
            seq += 1;
        }
        let miner_cfg = MinerConfig::default();
        let reg_cfg = RegularityConfig::default();
        let mut inc = IncrementalAnalyzer::new(&miner_cfg);
        for k in 0..events.len() {
            inc.fold(&events[k]);
            let (streamed, _) = inc.snapshot(&reg_cfg);
            let batch = analyze(&profile(events[..=k].to_vec()), &miner_cfg);
            assert_eq!(streamed.patterns, batch.patterns, "prefix len {}", k + 1);
        }
    }

    #[test]
    fn pattern_cap_truncates_list_but_not_aggregates() {
        // 5 refill phases of 30 appends each -> 5 InsertBack patterns.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for _ in 0..5 {
            for i in 0..30u32 {
                events.push(ev(seq, AccessKind::Insert, i, i + 1));
                seq += 1;
            }
            events.push(AccessEvent::whole(seq, AccessKind::Clear, 30));
            seq += 1;
        }
        let cfg = MinerConfig::default();
        let mut inc = IncrementalAnalyzer::new(&cfg).with_pattern_cap(2);
        for e in &events {
            inc.fold(e);
        }
        let (analysis, verdict) = inc.snapshot(&RegularityConfig::default());
        assert!(analysis.patterns.len() <= 3, "2 retained + <=1 open run");
        assert!(inc.dropped_patterns() >= 2);
        // Aggregates are exact despite the cap.
        assert_eq!(analysis.metrics.insert_pattern_count, 5);
        assert_eq!(analysis.metrics.longest_insert_run, 30);
        assert!(verdict.is_regular());
    }

    #[test]
    fn out_of_order_is_counted() {
        let mut inc = IncrementalAnalyzer::new(&MinerConfig::default());
        inc.fold(&ev(10, AccessKind::Read, 0, 5));
        inc.fold(&ev(5, AccessKind::Read, 1, 5));
        assert_eq!(inc.out_of_order(), 1);
    }
}
