//! Temporal phase segmentation and life-cycle structure.
//!
//! The use-case definitions of §III-B speak in terms of *phases*:
//! "insertion phases (>30 % of runtime)", "a sort pattern follows an
//! insertion pattern", "profiles often end with write patterns". This
//! module makes phases first-class: it splits a profile's timeline into
//! maximal stretches dominated by one kind of activity, and detects the
//! cyclic structure (the fill–scan–clear loops of Fig. 3) that the paper's
//! screenshots show.

use dsspy_events::{AccessKind, RuntimeProfile};
use serde::{Deserialize, Serialize};

/// The dominant activity of a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Insert-dominated: the structure is growing.
    Growth,
    /// Read/search-dominated: the structure is being consumed or scanned.
    Scan,
    /// Write/delete-dominated: in-place mutation or shrinking.
    Mutation,
    /// Compound-maintenance-dominated (sort, clear, copy, resize, ...).
    Maintenance,
    /// No class reaches the dominance threshold.
    Mixed,
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PhaseKind::Growth => "growth",
            PhaseKind::Scan => "scan",
            PhaseKind::Mutation => "mutation",
            PhaseKind::Maintenance => "maintenance",
            PhaseKind::Mixed => "mixed",
        })
    }
}

/// One segmented phase of a profile's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Dominant activity.
    pub kind: PhaseKind,
    /// Logical timestamp of the first event in the phase.
    pub first_seq: u64,
    /// Logical timestamp of the last event.
    pub last_seq: u64,
    /// Wall-clock offset of the first event, nanoseconds.
    pub first_nanos: u64,
    /// Wall-clock offset of the last event, nanoseconds.
    pub last_nanos: u64,
    /// Number of events in the phase.
    pub events: usize,
}

impl Phase {
    /// Wall-clock duration, nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.last_nanos.saturating_sub(self.first_nanos)
    }
}

/// Tunables for the phase segmenter.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Window size in events for the dominance vote.
    pub window: usize,
    /// Fraction a class must reach inside a window to claim it.
    pub dominance: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            window: 32,
            dominance: 0.6,
        }
    }
}

fn class_of(kind: AccessKind) -> PhaseKind {
    match kind {
        AccessKind::Insert => PhaseKind::Growth,
        AccessKind::Read | AccessKind::Search | AccessKind::ForAll => PhaseKind::Scan,
        AccessKind::Write | AccessKind::Delete => PhaseKind::Mutation,
        AccessKind::Clear
        | AccessKind::Sort
        | AccessKind::Reverse
        | AccessKind::Copy
        | AccessKind::Resize => PhaseKind::Maintenance,
    }
}

/// Segment a profile into phases.
///
/// The timeline is cut into `config.window`-event windows; each window votes
/// for the class holding at least `config.dominance` of its events (`Mixed`
/// otherwise), and adjacent windows with the same verdict merge into one
/// phase. The tail window may be shorter.
pub fn segment_phases(profile: &RuntimeProfile, config: &PhaseConfig) -> Vec<Phase> {
    let window = config.window.max(1);
    let mut out: Vec<Phase> = Vec::new();
    for chunk in profile.events.chunks(window) {
        let mut counts = [0usize; 5];
        for e in chunk {
            let idx = match class_of(e.kind) {
                PhaseKind::Growth => 0,
                PhaseKind::Scan => 1,
                PhaseKind::Mutation => 2,
                PhaseKind::Maintenance => 3,
                PhaseKind::Mixed => 4,
            };
            counts[idx] += 1;
        }
        let (best_idx, best) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("non-empty counts");
        let kind = if *best as f64 >= config.dominance * chunk.len() as f64 {
            match best_idx {
                0 => PhaseKind::Growth,
                1 => PhaseKind::Scan,
                2 => PhaseKind::Mutation,
                _ => PhaseKind::Maintenance,
            }
        } else {
            PhaseKind::Mixed
        };
        let first = chunk.first().expect("non-empty chunk");
        let last = chunk.last().expect("non-empty chunk");
        match out.last_mut() {
            Some(prev) if prev.kind == kind => {
                prev.last_seq = last.seq;
                prev.last_nanos = last.nanos;
                prev.events += chunk.len();
            }
            _ => out.push(Phase {
                kind,
                first_seq: first.seq,
                last_seq: last.seq,
                first_nanos: first.nanos,
                last_nanos: last.nanos,
                events: chunk.len(),
            }),
        }
    }
    out
}

/// A repeating phase-kind cycle, e.g. `[Growth, Scan, Maintenance] × 6`
/// for the paper's Fig. 3 profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cycle {
    /// The repeating unit of phase kinds.
    pub unit: Vec<PhaseKind>,
    /// How many full repetitions occur.
    pub repetitions: usize,
}

/// Detect the dominant cycle in a phase sequence: the shortest unit whose
/// repetition covers the sequence (ignoring a partial trailing unit).
/// Returns `None` when the sequence repeats nothing (fewer than 2 reps).
pub fn detect_cycle(phases: &[Phase]) -> Option<Cycle> {
    let kinds: Vec<PhaseKind> = phases.iter().map(|p| p.kind).collect();
    let n = kinds.len();
    if n < 2 {
        return None;
    }
    for unit_len in 1..=n / 2 {
        let unit = &kinds[..unit_len];
        let mut reps = 1;
        let mut ok = true;
        let mut i = unit_len;
        while i + unit_len <= n {
            if &kinds[i..i + unit_len] != unit {
                ok = false;
                break;
            }
            reps += 1;
            i += unit_len;
        }
        // A trailing partial unit is allowed if it is a prefix of the unit.
        if ok && kinds[i..].iter().zip(unit).all(|(a, b)| a == b) && reps >= 2 {
            return Some(Cycle {
                unit: unit.to_vec(),
                repetitions: reps,
            });
        }
    }
    None
}

/// Life-cycle summary: the paper's narrative phases of one instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lifecycle {
    /// Whether the profile starts with a growth phase (initialization).
    pub initialized_by_growth: bool,
    /// Whether the profile ends with mutation (the WWR smell territory).
    pub ends_in_mutation: bool,
    /// The detected cycle, if any.
    pub cycle: Option<Cycle>,
    /// All phases.
    pub phases: Vec<Phase>,
}

/// Compute the life-cycle summary for a profile.
pub fn lifecycle(profile: &RuntimeProfile, config: &PhaseConfig) -> Lifecycle {
    let phases = segment_phases(profile, config);
    Lifecycle {
        initialized_by_growth: phases.first().is_some_and(|p| p.kind == PhaseKind::Growth),
        ends_in_mutation: phases.last().is_some_and(|p| p.kind == PhaseKind::Mutation),
        cycle: detect_cycle(&phases),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsspy_events::{AccessEvent, AllocationSite, DsKind, InstanceId, InstanceInfo};

    fn profile(events: Vec<AccessEvent>) -> RuntimeProfile {
        RuntimeProfile::new(
            InstanceInfo::new(
                InstanceId(0),
                AllocationSite::new("T", "m", 1),
                DsKind::List,
                "i32",
            ),
            events,
        )
    }

    fn fill(events: &mut Vec<AccessEvent>, seq: &mut u64, kind: AccessKind, n: u32) {
        for i in 0..n {
            events.push(AccessEvent::at(*seq, kind, i, 100));
            *seq += 1;
        }
    }

    #[test]
    fn fill_then_scan_segments_into_two_phases() {
        let mut events = Vec::new();
        let mut seq = 0;
        fill(&mut events, &mut seq, AccessKind::Insert, 128);
        fill(&mut events, &mut seq, AccessKind::Read, 128);
        let phases = segment_phases(&profile(events), &PhaseConfig::default());
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, PhaseKind::Growth);
        assert_eq!(phases[0].events, 128);
        assert_eq!(phases[1].kind, PhaseKind::Scan);
        assert_eq!(phases[1].events, 128);
    }

    #[test]
    fn interleaved_traffic_is_mixed() {
        let mut events = Vec::new();
        for i in 0..128u64 {
            let kind = if i % 2 == 0 {
                AccessKind::Insert
            } else {
                AccessKind::Read
            };
            events.push(AccessEvent::at(i, kind, (i / 2) as u32, 100));
        }
        let phases = segment_phases(&profile(events), &PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].kind, PhaseKind::Mixed);
    }

    #[test]
    fn cycles_detected_in_fill_scan_loops() {
        let mut events = Vec::new();
        let mut seq = 0;
        for _ in 0..5 {
            fill(&mut events, &mut seq, AccessKind::Insert, 64);
            fill(&mut events, &mut seq, AccessKind::Read, 64);
        }
        let lc = lifecycle(&profile(events), &PhaseConfig::default());
        assert!(lc.initialized_by_growth);
        let cycle = lc.cycle.expect("cycle found");
        assert_eq!(cycle.unit, vec![PhaseKind::Growth, PhaseKind::Scan]);
        assert_eq!(cycle.repetitions, 5);
    }

    #[test]
    fn no_cycle_in_one_shot_profiles() {
        let mut events = Vec::new();
        let mut seq = 0;
        fill(&mut events, &mut seq, AccessKind::Insert, 64);
        fill(&mut events, &mut seq, AccessKind::Read, 256);
        let lc = lifecycle(&profile(events), &PhaseConfig::default());
        assert!(lc.cycle.is_none());
    }

    #[test]
    fn cleanup_writes_end_in_mutation() {
        let mut events = Vec::new();
        let mut seq = 0;
        fill(&mut events, &mut seq, AccessKind::Insert, 64);
        fill(&mut events, &mut seq, AccessKind::Read, 64);
        fill(&mut events, &mut seq, AccessKind::Write, 64);
        let lc = lifecycle(&profile(events), &PhaseConfig::default());
        assert!(lc.ends_in_mutation);
    }

    #[test]
    fn empty_profile_has_no_phases() {
        let lc = lifecycle(&profile(vec![]), &PhaseConfig::default());
        assert!(lc.phases.is_empty());
        assert!(!lc.initialized_by_growth);
        assert!(!lc.ends_in_mutation);
        assert!(lc.cycle.is_none());
    }

    #[test]
    fn phase_durations_cover_the_profile() {
        let mut events = Vec::new();
        let mut seq = 0;
        fill(&mut events, &mut seq, AccessKind::Insert, 100);
        fill(&mut events, &mut seq, AccessKind::Read, 100);
        let p = profile(events);
        let phases = segment_phases(&p, &PhaseConfig::default());
        let total: usize = phases.iter().map(|ph| ph.events).sum();
        assert_eq!(total, p.len());
        // Ordered and non-overlapping.
        for w in phases.windows(2) {
            assert!(w[0].last_seq < w[1].first_seq);
        }
    }

    #[test]
    fn maintenance_phase_from_compound_events() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        fill(&mut events, &mut seq, AccessKind::Insert, 32);
        for _ in 0..32 {
            events.push(AccessEvent::whole(seq, AccessKind::Sort, 100));
            seq += 1;
        }
        let phases = segment_phases(&profile(events), &PhaseConfig::default());
        assert_eq!(phases.last().unwrap().kind, PhaseKind::Maintenance);
    }
}
