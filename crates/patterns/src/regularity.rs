//! Recurring-regularity classification (paper §III-A, Table II).
//!
//! The study's first manual pass marked each runtime profile as "contains
//! regularity" or "contains no regularity" before classifying the patterns.
//! DSspy automates that gate: a profile *contains recurring regularities*
//! when some pattern kind repeats, or when a single pattern is substantial
//! enough to be a phase of its own.

use serde::{Deserialize, Serialize};

use crate::analysis::ProfileAnalysis;
use crate::kind::PatternKind;

/// Thresholds for the regularity gate.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegularityConfig {
    /// A pattern kind occurring at least this many times counts as
    /// *recurring*.
    pub min_recurrences: usize,
    /// A single pattern instance of at least this many events counts as a
    /// regularity on its own (one long scan is a regularity even if it
    /// happens once).
    pub min_single_run: usize,
}

impl Default for RegularityConfig {
    fn default() -> Self {
        RegularityConfig {
            min_recurrences: 2,
            min_single_run: 20,
        }
    }
}

/// The outcome of the regularity gate for one profile.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegularityVerdict {
    /// The profile shows recurring regularities; the recurring kinds are
    /// listed (deduplicated, in [`PatternKind::ALL`] order).
    Regular(Vec<PatternKind>),
    /// No regularity found.
    Irregular,
}

impl RegularityVerdict {
    /// Whether the profile passed the gate.
    pub fn is_regular(&self) -> bool {
        matches!(self, RegularityVerdict::Regular(_))
    }
}

/// Apply the regularity gate to an analyzed profile.
///
/// Folds the pattern list into [`crate::incremental::PatternAggregates`]
/// and gates on the per-kind counts/longest-run aggregates — the same state
/// the streaming analyzer maintains per emitted pattern.
pub fn regularity(analysis: &ProfileAnalysis, config: &RegularityConfig) -> RegularityVerdict {
    let mut aggs = crate::incremental::PatternAggregates::default();
    for p in &analysis.patterns {
        aggs.add(p);
    }
    aggs.regularity(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::run::MinerConfig;
    use dsspy_events::{
        AccessEvent, AccessKind, AllocationSite, DsKind, InstanceId, InstanceInfo, RuntimeProfile,
    };

    fn analysis_of(events: Vec<AccessEvent>) -> ProfileAnalysis {
        let p = RuntimeProfile::new(
            InstanceInfo::new(
                InstanceId(0),
                AllocationSite::new("T", "m", 1),
                DsKind::List,
                "i32",
            ),
            events,
        );
        analyze(&p, &MinerConfig::default())
    }

    #[test]
    fn repeated_scans_are_regular() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for _ in 0..3 {
            for i in 0..10u32 {
                events.push(AccessEvent::at(seq, AccessKind::Read, i, 10));
                seq += 1;
            }
            // Break adjacency between scans with a non-adjacent read.
            events.push(AccessEvent::at(seq, AccessKind::Read, 5, 10));
            seq += 1;
        }
        let v = regularity(&analysis_of(events), &RegularityConfig::default());
        match v {
            RegularityVerdict::Regular(kinds) => {
                assert!(kinds.contains(&PatternKind::ReadForward))
            }
            RegularityVerdict::Irregular => panic!("repeated scans must be regular"),
        }
    }

    #[test]
    fn one_long_scan_is_regular() {
        let events: Vec<_> = (0..50)
            .map(|i| AccessEvent::at(i, AccessKind::Read, i as u32, 50))
            .collect();
        assert!(regularity(&analysis_of(events), &RegularityConfig::default()).is_regular());
    }

    #[test]
    fn one_short_scan_is_irregular() {
        let events: Vec<_> = (0..5)
            .map(|i| AccessEvent::at(i, AccessKind::Read, i as u32, 5))
            .collect();
        assert_eq!(
            regularity(&analysis_of(events), &RegularityConfig::default()),
            RegularityVerdict::Irregular
        );
    }

    #[test]
    fn random_access_is_irregular() {
        let idxs = [9u32, 1, 7, 3, 0, 8, 2, 6, 4, 5];
        let events: Vec<_> = idxs
            .iter()
            .enumerate()
            .map(|(s, &i)| AccessEvent::at(s as u64, AccessKind::Read, i, 10))
            .collect();
        assert_eq!(
            regularity(&analysis_of(events), &RegularityConfig::default()),
            RegularityVerdict::Irregular
        );
    }

    #[test]
    fn custom_thresholds_respected() {
        let events: Vec<_> = (0..10)
            .map(|i| AccessEvent::at(i, AccessKind::Read, i as u32, 10))
            .collect();
        let lenient = RegularityConfig {
            min_recurrences: 1,
            min_single_run: 5,
        };
        assert!(regularity(&analysis_of(events.clone()), &lenient).is_regular());
        let strict = RegularityConfig {
            min_recurrences: 5,
            min_single_run: 1000,
        };
        assert!(!regularity(&analysis_of(events), &strict).is_regular());
    }
}
