//! The eight access-pattern types of §III-A.

use serde::{Deserialize, Serialize};

/// One of the paper's eight access-pattern types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternKind {
    /// Read adjacent elements; access position increases in time.
    ReadForward,
    /// Write adjacent elements; access position increases in time.
    WriteForward,
    /// Read adjacent elements; access position decreases in time.
    ReadBackward,
    /// Write adjacent elements; access position decreases in time.
    WriteBackward,
    /// Adjacent insert operations; always start at the front.
    InsertFront,
    /// Adjacent insert operations; always start from the end.
    InsertBack,
    /// Adjacent delete operations; always start at the front.
    DeleteFront,
    /// Adjacent delete operations; always start from the end.
    DeleteBack,
}

impl PatternKind {
    /// All eight pattern types.
    pub const ALL: [PatternKind; 8] = [
        PatternKind::ReadForward,
        PatternKind::WriteForward,
        PatternKind::ReadBackward,
        PatternKind::WriteBackward,
        PatternKind::InsertFront,
        PatternKind::InsertBack,
        PatternKind::DeleteFront,
        PatternKind::DeleteBack,
    ];

    /// Whether this is one of the two sequential-read pattern types that the
    /// Frequent-Search and Frequent-Long-Read use cases count.
    pub fn is_read(self) -> bool {
        matches!(self, PatternKind::ReadForward | PatternKind::ReadBackward)
    }

    /// Whether this is an insertion pattern (Long-Insert counts these).
    pub fn is_insert(self) -> bool {
        matches!(self, PatternKind::InsertFront | PatternKind::InsertBack)
    }

    /// Whether this is a deletion pattern.
    pub fn is_delete(self) -> bool {
        matches!(self, PatternKind::DeleteFront | PatternKind::DeleteBack)
    }

    /// Whether this is a write pattern (in-place overwrites).
    pub fn is_write(self) -> bool {
        matches!(self, PatternKind::WriteForward | PatternKind::WriteBackward)
    }

    /// The short name used in tables and charts.
    pub fn short(self) -> &'static str {
        match self {
            PatternKind::ReadForward => "RF",
            PatternKind::WriteForward => "WF",
            PatternKind::ReadBackward => "RB",
            PatternKind::WriteBackward => "WB",
            PatternKind::InsertFront => "IF",
            PatternKind::InsertBack => "IB",
            PatternKind::DeleteFront => "DF",
            PatternKind::DeleteBack => "DB",
        }
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PatternKind::ReadForward => "Read-Forward",
            PatternKind::WriteForward => "Write-Forward",
            PatternKind::ReadBackward => "Read-Backward",
            PatternKind::WriteBackward => "Write-Backward",
            PatternKind::InsertFront => "Insert-Front",
            PatternKind::InsertBack => "Insert-Back",
            PatternKind::DeleteFront => "Delete-Front",
            PatternKind::DeleteBack => "Delete-Back",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_partition_the_eight_kinds() {
        let mut total = 0;
        for k in PatternKind::ALL {
            let flags = [k.is_read(), k.is_write(), k.is_insert(), k.is_delete()];
            assert_eq!(
                flags.iter().filter(|f| **f).count(),
                1,
                "{k} must belong to exactly one family"
            );
            total += 1;
        }
        assert_eq!(total, 8);
    }

    #[test]
    fn short_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in PatternKind::ALL {
            assert!(seen.insert(k.short()));
        }
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(PatternKind::ReadForward.to_string(), "Read-Forward");
        assert_eq!(PatternKind::InsertBack.to_string(), "Insert-Back");
        assert_eq!(PatternKind::DeleteFront.to_string(), "Delete-Front");
    }
}
