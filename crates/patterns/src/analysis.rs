//! Profile analysis: pattern instances plus the derived metrics the
//! use-case classifier needs.
//!
//! The five parallel use cases and three sequential use cases of §III-B are
//! defined over aggregates of a profile — "insertion phases take > 30 % of
//! runtime", "> 60 % of accesses affect two different ends", "the profile
//! ends with writes that are never read" — rather than over single pattern
//! instances. [`analyze`] computes all of those aggregates once, in a single
//! pass over the mined patterns and the raw events.

use dsspy_events::{AccessKind, RuntimeProfile};
use serde::{Deserialize, Serialize};

use crate::incremental::{MetricsFold, PatternAggregates};
use crate::kind::PatternKind;
use crate::run::{mine_patterns, MinerConfig, PatternInstance};
use crate::threads::{thread_profile, ThreadProfile};

/// Everything the classifier needs to know about one profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileAnalysis {
    /// The mined pattern instances, ordered by start time.
    pub patterns: Vec<PatternInstance>,
    /// Derived aggregates.
    pub metrics: Metrics,
    /// Thread-interaction facts (§IV's multithreaded awareness).
    pub threads: ThreadProfile,
}

/// Derived aggregates over one profile. Field names follow the use-case
/// definitions they feed (§III-B).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Total events in the profile.
    pub total_events: usize,
    /// Events per access kind, indexed by discriminant.
    pub by_kind: [usize; 11],
    /// Read-class event count (Read, Search, Copy, ForAll).
    pub reads: usize,
    /// Write-class event count.
    pub writes: usize,
    /// Largest structure length observed.
    pub max_struct_len: u32,
    /// Profile wall-clock duration, nanoseconds.
    pub duration_nanos: u64,

    /// Fraction of profile runtime spent inside insertion patterns
    /// (Long-Insert: "> 30 % of runtime"). Falls back to the event-count
    /// share when the profile has zero wall-clock extent (trace profiles).
    pub insert_phase_share: f64,
    /// Length (events) of the longest insertion pattern
    /// (Long-Insert: "at least 100 consecutive access events").
    pub longest_insert_run: usize,
    /// Number of insertion pattern instances.
    pub insert_pattern_count: usize,

    /// Number of explicit search operations — `Search` events
    /// (Frequent-Search: "> 1000 search operations").
    pub search_ops: usize,
    /// Fraction of all events that sit inside Read-Forward/Read-Backward
    /// patterns (Frequent-Search: "at least 2 % of all access events").
    pub read_pattern_event_share: f64,

    /// Number of sequential read pattern instances
    /// (Frequent-Long-Read: "> 10 sequential read patterns").
    pub read_pattern_count: usize,
    /// Of those, how many covered ≥ the configured fraction of the
    /// structure (FLR: "each pattern has to read at least 50 %").
    pub long_read_pattern_count: usize,
    /// Fraction of events whose access type is Read or Search
    /// (FLR: "50 % of all access types have to be Read or Search").
    pub read_or_search_share: f64,

    /// Fraction of positional events that touched the front (index 0).
    pub front_share: f64,
    /// Fraction of positional events that touched the back (last position).
    pub back_share: f64,
    /// Whether mutations that *grow* the structure concentrate on one end
    /// and mutations that *shrink* it concentrate on the other
    /// (Implement-Queue's "two different ends").
    pub two_ended: bool,
    /// Whether all inserts and deletes share a common end
    /// (Stack-Implementation).
    pub common_end: bool,
    /// Insert-class positional events (grows).
    pub insert_ops: usize,
    /// Delete-class positional events (shrinks).
    pub delete_ops: usize,

    /// `Sort` events that occur *after* an insertion pattern ended
    /// (Sort-After-Insert).
    pub sorts_after_insert: usize,
    /// Total `Sort` events.
    pub sort_ops: usize,

    /// Number of `Resize` events (arrays only; Insert/Delete-Front).
    pub resize_ops: usize,
    /// Number of alternations between insert and delete operations —
    /// high alternation on an array is the IDF signature.
    pub insert_delete_alternations: usize,

    /// Number of trailing write-class events at the very end of the profile
    /// that are never followed by any read-class event (Write-Without-Read).
    pub trailing_unread_writes: usize,
}

/// Mine patterns and compute the derived metrics for one profile.
pub fn analyze(profile: &RuntimeProfile, config: &MinerConfig) -> ProfileAnalysis {
    let patterns = mine_patterns(profile, config);
    let metrics = compute_metrics(profile, &patterns);
    let threads = thread_profile(profile);
    ProfileAnalysis {
        patterns,
        metrics,
        threads,
    }
}

/// FLR's per-pattern coverage requirement: "read at least 50 % of the data
/// structure".
pub const LONG_READ_COVERAGE: f64 = 0.5;

fn compute_metrics(profile: &RuntimeProfile, patterns: &[PatternInstance]) -> Metrics {
    // All per-event and per-pattern derivations live in the incremental
    // folds (see `crate::incremental`); the batch pass just folds the whole
    // profile in one sweep. The streaming analyzer folds the same state one
    // event at a time, so both produce identical metrics by construction.
    let mut fold = MetricsFold::default();
    for e in &profile.events {
        fold.fold(e);
    }
    let mut aggs = PatternAggregates::default();
    for p in patterns {
        aggs.add(p);
    }
    fold.finish(&aggs)
}

impl Metrics {
    /// Count of events of one kind.
    pub fn count(&self, kind: AccessKind) -> usize {
        self.by_kind[kind as usize]
    }

    /// Fraction of positional traffic on the two ends combined
    /// (Implement-Queue: "> 60 % in sum ... two different ends").
    pub fn end_traffic_share(&self) -> f64 {
        (self.front_share + self.back_share).min(1.0)
    }
}

impl ProfileAnalysis {
    /// Pattern instances of one kind.
    pub fn of_kind(&self, kind: PatternKind) -> impl Iterator<Item = &PatternInstance> {
        self.patterns.iter().filter(move |p| p.kind == kind)
    }

    /// Histogram of pattern instances per kind.
    pub fn pattern_histogram(&self) -> [(PatternKind, usize); 8] {
        let mut out = PatternKind::ALL.map(|k| (k, 0usize));
        for p in &self.patterns {
            let slot = out
                .iter_mut()
                .find(|(k, _)| *k == p.kind)
                .expect("all kinds present");
            slot.1 += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsspy_events::{AccessEvent, AllocationSite, DsKind, InstanceId, InstanceInfo, Target};

    fn profile(events: Vec<AccessEvent>) -> RuntimeProfile {
        RuntimeProfile::new(
            InstanceInfo::new(
                InstanceId(0),
                AllocationSite::new("T", "m", 1),
                DsKind::List,
                "i32",
            ),
            events,
        )
    }

    fn run(events: Vec<AccessEvent>) -> ProfileAnalysis {
        analyze(&profile(events), &MinerConfig::default())
    }

    /// Append i..n, then scan forward once.
    fn fill_then_scan(n: u32) -> Vec<AccessEvent> {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..n {
            events.push(AccessEvent::at(seq, AccessKind::Insert, i, i + 1));
            seq += 1;
        }
        for i in 0..n {
            events.push(AccessEvent::at(seq, AccessKind::Read, i, n));
            seq += 1;
        }
        events
    }

    #[test]
    fn fill_then_scan_metrics() {
        let a = run(fill_then_scan(100));
        assert_eq!(a.patterns.len(), 2);
        assert_eq!(a.metrics.longest_insert_run, 100);
        assert_eq!(a.metrics.insert_pattern_count, 1);
        assert_eq!(a.metrics.read_pattern_count, 1);
        assert_eq!(a.metrics.long_read_pattern_count, 1);
        // Half the events are inserts; trace profiles use seq as nanos so
        // the runtime share is ~0.5.
        assert!((a.metrics.insert_phase_share - 0.5).abs() < 0.02);
        assert!((a.metrics.read_or_search_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn queue_shape_is_two_ended() {
        // Enqueue at back, dequeue at front, interleaved.
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut len = 0u32;
        for _ in 0..50 {
            events.push(AccessEvent::at(seq, AccessKind::Insert, len, len + 1));
            len += 1;
            seq += 1;
            events.push(AccessEvent::at(seq, AccessKind::Insert, len, len + 1));
            len += 1;
            seq += 1;
            len -= 1;
            events.push(AccessEvent::at(seq, AccessKind::Delete, 0, len));
            seq += 1;
        }
        let a = run(events);
        assert!(a.metrics.two_ended, "queue usage must be two-ended");
        assert!(!a.metrics.common_end);
        assert!(a.metrics.end_traffic_share() > 0.6);
    }

    #[test]
    fn stack_shape_is_common_end() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut len = 0u32;
        for _ in 0..30 {
            events.push(AccessEvent::at(seq, AccessKind::Insert, len, len + 1));
            len += 1;
            seq += 1;
            events.push(AccessEvent::at(seq, AccessKind::Insert, len, len + 1));
            len += 1;
            seq += 1;
            len -= 1;
            events.push(AccessEvent::at(seq, AccessKind::Delete, len, len));
            seq += 1;
        }
        let a = run(events);
        assert!(a.metrics.common_end, "stack usage shares one end");
        assert!(!a.metrics.two_ended);
    }

    #[test]
    fn sort_after_insert_detected() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for i in 0..150u32 {
            events.push(AccessEvent::at(seq, AccessKind::Insert, i, i + 1));
            seq += 1;
        }
        events.push(AccessEvent::whole(seq, AccessKind::Sort, 150));
        let a = run(events);
        assert_eq!(a.metrics.sorts_after_insert, 1);
        assert_eq!(a.metrics.sort_ops, 1);
    }

    #[test]
    fn sort_before_insert_not_counted() {
        let mut events = vec![AccessEvent::whole(0, AccessKind::Sort, 0)];
        for i in 0..150u32 {
            events.push(AccessEvent::at(
                u64::from(i) + 1,
                AccessKind::Insert,
                i,
                i + 1,
            ));
        }
        let a = run(events);
        assert_eq!(a.metrics.sorts_after_insert, 0);
        assert_eq!(a.metrics.sort_ops, 1);
    }

    #[test]
    fn trailing_writes_counted() {
        let mut events = fill_then_scan(10);
        let seq0 = events.last().unwrap().seq + 1;
        // Null out all entries at end of life — never read again.
        for i in 0..10u32 {
            events.push(AccessEvent::at(
                seq0 + u64::from(i),
                AccessKind::Write,
                i,
                10,
            ));
        }
        let a = run(events);
        assert_eq!(a.metrics.trailing_unread_writes, 10);
    }

    #[test]
    fn reads_at_end_clear_trailing_writes() {
        let mut events = fill_then_scan(10);
        let seq0 = events.last().unwrap().seq + 1;
        for i in 0..10u32 {
            events.push(AccessEvent::at(
                seq0 + u64::from(i),
                AccessKind::Write,
                i,
                10,
            ));
        }
        events.push(AccessEvent::at(seq0 + 10, AccessKind::Read, 0, 10));
        let a = run(events);
        assert_eq!(a.metrics.trailing_unread_writes, 0);
    }

    #[test]
    fn search_ops_counted() {
        let mut events = Vec::new();
        for i in 0..1200u64 {
            events.push(AccessEvent {
                seq: i,
                nanos: i,
                kind: AccessKind::Search,
                target: Target::Range { start: 0, end: 50 },
                len: 100,
                thread: dsspy_events::ThreadTag::MAIN,
            });
        }
        let a = run(events);
        assert_eq!(a.metrics.search_ops, 1200);
        assert!((a.metrics.read_or_search_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternation_counting() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut len = 0u32;
        // I D I D I D: five alternations.
        for _ in 0..3 {
            events.push(AccessEvent::at(seq, AccessKind::Insert, 0, len + 1));
            len += 1;
            seq += 1;
            len -= 1;
            events.push(AccessEvent::at(seq, AccessKind::Delete, 0, len));
            seq += 1;
        }
        let a = run(events);
        assert_eq!(a.metrics.insert_delete_alternations, 5);
    }

    #[test]
    fn empty_profile_analysis() {
        let a = run(vec![]);
        assert!(a.patterns.is_empty());
        assert_eq!(a.metrics.total_events, 0);
        assert_eq!(a.metrics.insert_phase_share, 0.0);
        assert!(!a.metrics.two_ended);
    }

    #[test]
    fn histogram_counts_by_kind() {
        let a = run(fill_then_scan(20));
        let h = a.pattern_histogram();
        let ib = h
            .iter()
            .find(|(k, _)| *k == PatternKind::InsertBack)
            .unwrap();
        let rf = h
            .iter()
            .find(|(k, _)| *k == PatternKind::ReadForward)
            .unwrap();
        assert_eq!(ib.1, 1);
        assert_eq!(rf.1, 1);
        assert_eq!(h.iter().map(|(_, n)| n).sum::<usize>(), 2);
    }
}
