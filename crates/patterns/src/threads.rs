//! Thread-interaction analysis.
//!
//! "We want to be able to support single- and multithreaded code so we are
//! aware of access events that occur in parallel. In order to detect
//! successive access events we also capture the thread id and bind it to
//! each access event" (§IV). Beyond per-thread untangling (which the miner
//! already does), the thread dimension answers a question the classifier
//! needs: *is this instance already accessed in parallel?* Recommending
//! "parallelize the insert" for a structure that several threads already
//! hammer concurrently would be advice the engineer has already taken.

use dsspy_events::{RuntimeProfile, ThreadTag};
use serde::{Deserialize, Serialize};

/// Thread-level facts about one profile.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadProfile {
    /// Distinct threads that touched the instance.
    pub thread_count: usize,
    /// Events per thread, descending.
    pub events_per_thread: Vec<(ThreadTag, usize)>,
    /// Number of adjacent event pairs whose threads differ — high switch
    /// counts mean fine-grained interleaving (true sharing), low counts
    /// mean phase-wise handoff.
    pub switches: usize,
    /// Share of events belonging to the busiest thread, in `(0, 1]`.
    pub dominant_share: f64,
}

impl ThreadProfile {
    /// Whether the instance is effectively single-threaded (one thread, or
    /// one thread doing ≥ `share` of the traffic with phase-wise handoff).
    pub fn effectively_single_threaded(&self, share: f64) -> bool {
        self.thread_count <= 1 || (self.dominant_share >= share && self.switches <= 2)
    }

    /// Whether the instance is accessed concurrently in an interleaved way.
    pub fn is_shared_concurrently(&self) -> bool {
        self.thread_count > 1 && self.switches > 2
    }
}

/// Compute the thread profile of one runtime profile.
///
/// Folds the whole profile through [`crate::incremental::ThreadFold`] — the
/// same state the streaming analyzer maintains event by event.
pub fn thread_profile(profile: &RuntimeProfile) -> ThreadProfile {
    let mut fold = crate::incremental::ThreadFold::default();
    for e in &profile.events {
        fold.fold(e);
    }
    fold.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsspy_events::{AccessEvent, AccessKind, AllocationSite, DsKind, InstanceId, InstanceInfo};

    fn profile(events: Vec<AccessEvent>) -> RuntimeProfile {
        RuntimeProfile::new(
            InstanceInfo::new(
                InstanceId(0),
                AllocationSite::new("T", "m", 1),
                DsKind::List,
                "i32",
            ),
            events,
        )
    }

    fn ev(seq: u64, thread: u32) -> AccessEvent {
        let mut e = AccessEvent::at(seq, AccessKind::Read, (seq % 10) as u32, 10);
        e.thread = ThreadTag(thread);
        e
    }

    #[test]
    fn single_thread_profile() {
        let tp = thread_profile(&profile((0..20).map(|s| ev(s, 0)).collect()));
        assert_eq!(tp.thread_count, 1);
        assert_eq!(tp.switches, 0);
        assert_eq!(tp.dominant_share, 1.0);
        assert!(tp.effectively_single_threaded(0.9));
        assert!(!tp.is_shared_concurrently());
    }

    #[test]
    fn interleaved_threads_are_shared() {
        let events: Vec<_> = (0..40).map(|s| ev(s, (s % 2) as u32)).collect();
        let tp = thread_profile(&profile(events));
        assert_eq!(tp.thread_count, 2);
        assert_eq!(tp.switches, 39);
        assert!((tp.dominant_share - 0.5).abs() < 1e-12);
        assert!(tp.is_shared_concurrently());
        assert!(!tp.effectively_single_threaded(0.9));
    }

    #[test]
    fn phase_handoff_is_effectively_single_threaded() {
        // Thread 0 builds, thread 1 consumes: exactly one switch.
        let mut events: Vec<_> = (0..50).map(|s| ev(s, 0)).collect();
        events.extend((50..60).map(|s| ev(s, 1)));
        let tp = thread_profile(&profile(events));
        assert_eq!(tp.thread_count, 2);
        assert_eq!(tp.switches, 1);
        assert!(tp.dominant_share > 0.8);
        assert!(tp.effectively_single_threaded(0.8));
        assert!(!tp.is_shared_concurrently());
    }

    #[test]
    fn empty_profile_thread_stats() {
        let tp = thread_profile(&profile(vec![]));
        assert_eq!(tp.thread_count, 0);
        assert_eq!(tp.dominant_share, 0.0);
        assert!(tp.effectively_single_threaded(0.9));
    }

    #[test]
    fn events_per_thread_sorted_descending() {
        let mut events: Vec<_> = (0..30).map(|s| ev(s, 1)).collect();
        events.extend((30..40).map(|s| ev(s, 2)));
        events.extend((40..45).map(|s| ev(s, 3)));
        let tp = thread_profile(&profile(events));
        let counts: Vec<usize> = tp.events_per_thread.iter().map(|(_, n)| *n).collect();
        assert_eq!(counts, vec![30, 10, 5]);
    }
}
