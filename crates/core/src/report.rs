//! The DSspy report: advice per instance plus aggregate quality numbers.

use dsspy_collect::CollectorStats;
use dsspy_events::InstanceInfo;
use dsspy_patterns::{ProfileAnalysis, RegularityVerdict};
use dsspy_telemetry::{overhead::signals, TelemetrySnapshot};
use dsspy_usecases::{Advisory, UseCase, UseCaseKind};
use serde::{Deserialize, Serialize};

/// Everything DSspy has to say about one data-structure instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstanceReport {
    /// The instance (allocation site, kind, element type).
    pub instance: InstanceInfo,
    /// Number of access events captured for it.
    pub events: usize,
    /// Mined patterns and derived metrics.
    pub analysis: ProfileAnalysis,
    /// Did the profile contain recurring regularities (Table II gate)?
    pub regularity: RegularityVerdict,
    /// Detected use cases with evidence and recommended actions.
    pub use_cases: Vec<UseCase>,
    /// Structural misuse advisories (§II-A findings; not use cases).
    #[serde(default)]
    pub advisories: Vec<Advisory>,
}

impl InstanceReport {
    /// Whether DSspy flags this instance (the engineer must look at it).
    pub fn is_flagged(&self) -> bool {
        !self.use_cases.is_empty()
    }

    /// Whether any detected use case carries parallel potential.
    pub fn has_parallel_potential(&self) -> bool {
        self.use_cases.iter().any(|u| u.kind.is_parallel())
    }
}

/// Wall-clock cost of analyzing one instance, split into the two analysis
/// phases of Fig. 4 (pattern mining vs. use-case classification).
///
/// Diagnostic only: timings vary run to run, so they are excluded from
/// serialization to keep serialized [`Report`]s byte-identical across runs
/// and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceTiming {
    /// Pattern mining + the regularity gate, nanoseconds.
    pub mining_nanos: u64,
    /// Use-case classification + the advisory scan, nanoseconds.
    pub classify_nanos: u64,
}

impl InstanceTiming {
    /// Total analysis time spent on this instance.
    pub fn total_nanos(&self) -> u64 {
        self.mining_nanos + self.classify_nanos
    }
}

/// Timing of one `analyze_capture` pass: per-instance phase costs plus the
/// wall clock of the whole (possibly parallel) pass. Not serialized.
#[derive(Clone, Debug, Default)]
pub struct AnalysisTimings {
    /// One entry per entry of [`Report::instances`], same order.
    pub per_instance: Vec<InstanceTiming>,
    /// Wall-clock duration of the whole analysis pass, nanoseconds.
    pub wall_nanos: u64,
    /// Worker threads the pass actually used (after resolving `0`).
    pub threads: usize,
}

impl AnalysisTimings {
    /// Summed per-instance analysis time — the CPU cost of the pass. With
    /// `threads` workers the wall clock can be up to `threads`× smaller.
    pub fn cpu_nanos(&self) -> u64 {
        self.per_instance
            .iter()
            .map(InstanceTiming::total_nanos)
            .sum()
    }

    /// Summed pattern-mining time across instances.
    pub fn mining_nanos(&self) -> u64 {
        self.per_instance.iter().map(|t| t.mining_nanos).sum()
    }

    /// Summed classification time across instances.
    pub fn classify_nanos(&self) -> u64 {
        self.per_instance.iter().map(|t| t.classify_nanos).sum()
    }
}

/// The full session report — the *Advice* output of Fig. 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// One entry per registered instance, registration order.
    pub instances: Vec<InstanceReport>,
    /// Collector statistics (events captured, batches, drops).
    pub stats: CollectorStats,
    /// Wall-clock duration of the profiled execution, nanoseconds.
    pub session_nanos: u64,
    /// How long the analysis itself took, per instance and phase. Skipped
    /// by serde so that two analyses of the same capture serialize
    /// identically no matter how many threads (or how much wall time) each
    /// one used. The data is *not* lost on a round trip when the analysis
    /// ran with telemetry: the same numbers travel as `mine#i`/`classify#i`
    /// spans inside [`Report::telemetry`], and
    /// [`Report::restore_timings_from_telemetry`] rebuilds this field from
    /// them after deserialization.
    #[serde(skip)]
    pub timings: AnalysisTimings,
    /// Self-observation snapshot of the run that produced this report:
    /// collector metrics, persistence volume, per-instance analysis spans,
    /// and the Table IV-style overhead accounting. `None` when the analysis
    /// ran without telemetry — which also keeps serialized reports
    /// byte-identical across thread counts in that default mode.
    #[serde(default)]
    pub telemetry: Option<TelemetrySnapshot>,
}

impl Report {
    /// Number of registered instances — the search-space denominator the
    /// engineer would face without DSspy (§V).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Instances DSspy flags with at least one use case.
    pub fn flagged_instance_count(&self) -> usize {
        self.instances.iter().filter(|i| i.is_flagged()).count()
    }

    /// The paper's headline metric: the fraction of instances the engineer
    /// no longer needs to look at, e.g. 0.7692 for 104 → 24 (§V).
    pub fn search_space_reduction(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        1.0 - self.flagged_instance_count() as f64 / self.instances.len() as f64
    }

    /// The reduction computed the way the paper's Table IV does: one
    /// "location to inspect" per *use case* rather than per flagged
    /// instance (e.g. gpdotnet: 37 instances, 5 use cases → 86.49 %).
    /// An instance carrying two use cases counts twice, so this can be
    /// lower than [`Report::search_space_reduction`]; it is floored at 0.
    pub fn use_case_reduction(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        (1.0 - self.all_use_cases().len() as f64 / self.instances.len() as f64).max(0.0)
    }

    /// All detected use cases across instances, in registration order.
    pub fn all_use_cases(&self) -> Vec<&UseCase> {
        self.instances
            .iter()
            .flat_map(|i| i.use_cases.iter())
            .collect()
    }

    /// Count of use cases per category, in [`UseCaseKind::ALL`] order —
    /// the Table III row for this program.
    pub fn use_case_histogram(&self) -> [(UseCaseKind, usize); 8] {
        let mut out = UseCaseKind::ALL.map(|k| (k, 0usize));
        for u in self.all_use_cases() {
            let slot = out
                .iter_mut()
                .find(|(k, _)| *k == u.kind)
                .expect("all kinds present");
            slot.1 += 1;
        }
        out
    }

    /// All misuse advisories across instances, with the instance they refer
    /// to.
    pub fn all_advisories(&self) -> Vec<(&InstanceReport, &Advisory)> {
        self.instances
            .iter()
            .flat_map(|i| i.advisories.iter().map(move |a| (i, a)))
            .collect()
    }

    /// Instances whose profiles contain recurring regularities (the Table II
    /// numerator).
    pub fn regular_instance_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.regularity.is_regular())
            .count()
    }

    /// Render the Table-V-style use-case listing:
    ///
    /// ```text
    /// Use Case 1
    ///   Class:          GPdotNet.Engine.GPModelGlobals
    ///   Method:         GenerateTerminalSet
    ///   Position:       120
    ///   Data structure: Array<System.Double>
    ///   Use Case:       Frequent-Long-Read
    ///   Action:         ...
    /// ```
    pub fn render_use_cases(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (n, u) in self.all_use_cases().iter().enumerate() {
            let _ = writeln!(out, "Use Case {}", n + 1);
            let _ = writeln!(out, "  Class:          {}", u.instance.site.class);
            let _ = writeln!(out, "  Method:         {}", u.instance.site.method);
            let _ = writeln!(out, "  Position:       {}", u.instance.site.position);
            let _ = writeln!(out, "  Data structure: {}", u.instance.display_type());
            let _ = writeln!(out, "  Use Case:       {}", u.kind);
            let _ = writeln!(out, "  Reason:         {}", u.reason());
            let _ = writeln!(out, "  Action:         {}", u.recommendation());
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("No use cases detected.\n");
        }
        out
    }

    /// Render the misuse advisories (§II-A) as a text section.
    pub fn render_advisories(&self) -> String {
        use std::fmt::Write;
        let advisories = self.all_advisories();
        if advisories.is_empty() {
            return String::new();
        }
        let mut out = String::from("Structural advisories (improper data structure usage):\n");
        for (inst, adv) in advisories {
            let what = match adv {
                Advisory::ListAsTree {
                    tree_hop_share,
                    tree_hops,
                } => format!(
                    "list used as binary tree ({tree_hops} heap-edge hops, {:.0}% of traffic)",
                    tree_hop_share * 100.0
                ),
                Advisory::ListAsMap {
                    search_share,
                    searches,
                } => format!(
                    "list used as lookup table ({searches} linear searches, {:.0}% of events)",
                    search_share * 100.0
                ),
            };
            let _ = writeln!(out, "  {}: {}", inst.instance.site, what);
            let _ = writeln!(out, "    → {}", adv.recommendation());
        }
        out
    }

    /// Rebuild [`Report::timings`] from the embedded telemetry snapshot.
    ///
    /// `timings` is `#[serde(skip)]`, so a report loaded from JSON starts
    /// with empty timings even though the analysis that produced it measured
    /// them. When the analysis ran with telemetry, the same measurements
    /// travel as `mine#i`/`classify#i` spans (per-instance phases, indexed
    /// in [`Report::instances`] order) plus the `analyze_capture` pipeline
    /// span (wall clock) and the `analysis.threads` gauge. This restores
    /// the field from those. Returns `false` — leaving `timings` untouched
    /// — when there is no snapshot or it carries no analysis spans.
    pub fn restore_timings_from_telemetry(&mut self) -> bool {
        let Some(snapshot) = &self.telemetry else {
            return false;
        };
        let mut per_instance = vec![InstanceTiming::default(); self.instances.len()];
        let mut found = false;
        for span in snapshot.spans_in(signals::ANALYSIS_CAT) {
            let (slot, is_mining) = if let Some(i) = span.name.strip_prefix("mine#") {
                (i.parse::<usize>().ok(), true)
            } else if let Some(i) = span.name.strip_prefix("classify#") {
                (i.parse::<usize>().ok(), false)
            } else {
                continue;
            };
            let Some(i) = slot.filter(|&i| i < per_instance.len()) else {
                continue;
            };
            if is_mining {
                per_instance[i].mining_nanos = span.dur_nanos;
            } else {
                per_instance[i].classify_nanos = span.dur_nanos;
            }
            found = true;
        }
        if !found {
            return false;
        }
        self.timings = AnalysisTimings {
            per_instance,
            wall_nanos: snapshot
                .spans_in(signals::PIPELINE_CAT)
                .find(|s| s.name == "analyze_capture")
                .map_or(0, |s| s.dur_nanos),
            threads: snapshot.gauge("analysis.threads").unwrap_or(0) as usize,
        };
        true
    }

    /// One-paragraph summary with the headline numbers.
    pub fn summary(&self) -> String {
        format!(
            "{} data structure instances, {} flagged ({} use cases, {} with parallel \
             potential); search space reduction {:.2}%; {} events captured in {:.1} ms.",
            self.instance_count(),
            self.flagged_instance_count(),
            self.all_use_cases().len(),
            self.all_use_cases()
                .iter()
                .filter(|u| u.kind.is_parallel())
                .count(),
            self.search_space_reduction() * 100.0,
            self.stats.events,
            self.session_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dsspy;
    use dsspy_collections::{site, SpyVec};

    fn sample_report() -> Report {
        Dsspy::new().profile(|session| {
            let mut hot = SpyVec::register(session, site!("hot"));
            for i in 0..500 {
                hot.add(i);
            }
            let mut quiet = SpyVec::register(session, site!("quiet"));
            quiet.add(1);
            let _idle: SpyVec<i32> = SpyVec::register(session, site!("idle"));
        })
    }

    #[test]
    fn reduction_counts_unflagged_instances() {
        let r = sample_report();
        assert_eq!(r.instance_count(), 3);
        assert_eq!(r.flagged_instance_count(), 1);
        assert!((r.search_space_reduction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_total() {
        let r = sample_report();
        let h = r.use_case_histogram();
        assert_eq!(
            h.iter().map(|(_, n)| n).sum::<usize>(),
            r.all_use_cases().len()
        );
    }

    #[test]
    fn render_contains_table_v_fields() {
        let r = sample_report();
        let text = r.render_use_cases();
        assert!(text.contains("Use Case 1"));
        assert!(text.contains("Class:"));
        assert!(text.contains("Long-Insert"));
        assert!(text.contains("Parallelize the insert operation."));
    }

    #[test]
    fn render_empty_report() {
        let r = Dsspy::new().profile(|_| {});
        assert_eq!(r.render_use_cases(), "No use cases detected.\n");
        assert_eq!(r.search_space_reduction(), 0.0);
    }

    #[test]
    fn summary_mentions_headline_numbers() {
        let r = sample_report();
        let s = r.summary();
        assert!(s.contains("3 data structure instances"));
        assert!(s.contains("1 flagged"));
    }

    #[test]
    fn report_serializes_roundtrip() {
        let r = sample_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.instance_count(), r.instance_count());
        assert_eq!(back.flagged_instance_count(), r.flagged_instance_count());
    }

    #[test]
    fn timings_survive_a_round_trip_via_telemetry() {
        // Regression: `timings` is serde-skipped, so it used to be lost on
        // every save/load. With telemetry the per-instance measurements ride
        // along as spans and can be restored.
        let telemetry = dsspy_telemetry::Telemetry::enabled();
        let r = Dsspy::new().with_threads(2).profile_with(
            |session| {
                let mut hot = SpyVec::register(session, site!("hot"));
                for i in 0..500 {
                    hot.add(i);
                }
                let mut quiet = SpyVec::register(session, site!("quiet"));
                quiet.add(1);
            },
            &telemetry,
        );
        assert!(r.telemetry.is_some(), "observed run embeds its snapshot");
        let json = serde_json::to_string(&r).unwrap();
        let mut back: Report = serde_json::from_str(&json).unwrap();
        assert!(
            back.timings.per_instance.is_empty(),
            "timings are still not serialized directly"
        );
        assert!(back.restore_timings_from_telemetry());
        assert_eq!(back.timings.per_instance.len(), back.instances.len());
        assert_eq!(back.timings.threads, 2);
        assert!(back.timings.wall_nanos > 0);
        // Every instance that has events did measurable mining work.
        for (timing, inst) in back.timings.per_instance.iter().zip(&back.instances) {
            if inst.events > 0 {
                assert!(timing.total_nanos() > 0, "instance {:?}", inst.instance.id);
            }
        }
    }

    #[test]
    fn restore_without_telemetry_is_a_noop() {
        let mut r = sample_report();
        r.telemetry = None;
        let before = r.timings.clone();
        assert!(!r.restore_timings_from_telemetry());
        assert_eq!(r.timings.per_instance.len(), before.per_instance.len());
    }
}

#[cfg(test)]
mod advisory_tests {
    use crate::pipeline::Dsspy;
    use dsspy_collections::{site, SpyVec};
    use dsspy_usecases::Advisory;

    #[test]
    fn heap_on_a_list_raises_the_tree_advisory_end_to_end() {
        let report = Dsspy::new().profile(|session| {
            // A binary max-heap hand-rolled on a list: sift-down walks.
            let mut heap = SpyVec::register(session, site!("homemade_heap"));
            for i in 0..127u64 {
                heap.add((i * 37) % 128);
            }
            for round in 0..40usize {
                let mut i = 0usize;
                loop {
                    let left = 2 * i + 1;
                    let right = 2 * i + 2;
                    if left >= heap.len() {
                        break;
                    }
                    let _ = *heap.get(i);
                    i = if right < heap.len() && (round + i).is_multiple_of(2) {
                        right
                    } else {
                        left
                    };
                }
            }
        });
        let advisories = report.all_advisories();
        assert!(
            advisories
                .iter()
                .any(|(_, a)| matches!(a, Advisory::ListAsTree { .. })),
            "{advisories:?}"
        );
        let text = report.render_advisories();
        assert!(text.contains("binary tree"), "{text}");
        assert!(text.contains("homemade_heap"));
    }

    #[test]
    fn plain_fills_raise_no_advisories() {
        let report = Dsspy::new().profile(|session| {
            let mut l = SpyVec::register(session, site!("plain"));
            for i in 0..500 {
                l.add(i);
            }
        });
        assert!(report.all_advisories().is_empty());
        assert!(report.render_advisories().is_empty());
    }
}
