//! Measurement helpers for the evaluation (paper §V, Tables IV and VI):
//! slowdown factors, averaged timings, and search-space bookkeeping.

use serde::{Deserialize, Serialize};

/// Average wall-clock nanoseconds of `runs` executions of `f`.
///
/// The paper "wrote a tool that runs all instrumented versions ten times and
/// computes their average execution times" — this is that tool.
pub fn measure_avg_nanos(runs: usize, mut f: impl FnMut()) -> u64 {
    let runs = runs.max(1);
    let start = std::time::Instant::now();
    for _ in 0..runs {
        f();
    }
    (start.elapsed().as_nanos() / runs as u128) as u64
}

/// One slowdown measurement: plain vs. instrumented execution.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Slowdown {
    /// Average runtime of the plain (ghost-mode) program, nanoseconds.
    pub plain_nanos: u64,
    /// Average runtime of the instrumented program, nanoseconds.
    pub instrumented_nanos: u64,
}

impl Slowdown {
    /// Measure both variants, `runs` times each.
    pub fn measure(runs: usize, mut plain: impl FnMut(), mut instrumented: impl FnMut()) -> Self {
        Slowdown {
            plain_nanos: measure_avg_nanos(runs, &mut plain),
            instrumented_nanos: measure_avg_nanos(runs, &mut instrumented),
        }
    }

    /// The slowdown factor (Table IV's "Profiling Slowdown" column).
    pub fn factor(&self) -> f64 {
        if self.plain_nanos == 0 {
            return 0.0;
        }
        self.instrumented_nanos as f64 / self.plain_nanos as f64
    }
}

/// Search-space bookkeeping for one program (Table IV's "Data Structures"
/// and "Search Space Reduction" columns).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SearchSpaceReduction {
    /// Instances in the program (what the engineer faces without DSspy).
    pub total_instances: usize,
    /// Instances DSspy's use cases reference.
    pub flagged_instances: usize,
}

impl SearchSpaceReduction {
    /// The reduction fraction, e.g. 0.7692 for 104 → 24.
    pub fn reduction(&self) -> f64 {
        if self.total_instances == 0 {
            return 0.0;
        }
        1.0 - self.flagged_instances as f64 / self.total_instances as f64
    }

    /// Render as the paper does, e.g. `"4 of 16 (75.00%)"`.
    pub fn render(&self) -> String {
        format!(
            "{} of {} ({:.2}%)",
            self.flagged_instances,
            self.total_instances,
            self.reduction() * 100.0
        )
    }
}

/// A sequential-vs-parallel speedup observation (Table IV's "Total Speedup"
/// and the per-use-case speedups of §V).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Speedup {
    /// Sequential runtime, nanoseconds.
    pub sequential_nanos: u64,
    /// Parallel (recommendation-following) runtime, nanoseconds.
    pub parallel_nanos: u64,
}

impl Speedup {
    /// Measure both variants, `runs` times each.
    pub fn measure(runs: usize, mut sequential: impl FnMut(), mut parallel: impl FnMut()) -> Self {
        Speedup {
            sequential_nanos: measure_avg_nanos(runs, &mut sequential),
            parallel_nanos: measure_avg_nanos(runs, &mut parallel),
        }
    }

    /// The speedup factor (sequential / parallel).
    pub fn factor(&self) -> f64 {
        if self.parallel_nanos == 0 {
            return 0.0;
        }
        self.sequential_nanos as f64 / self.parallel_nanos as f64
    }
}

/// Sequential-fraction bookkeeping for Table VI: how much of a program's
/// runtime is inherently sequential vs. parallelizable.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RuntimeFractions {
    /// Runtime of the parts that must stay sequential, nanoseconds.
    pub sequential_nanos: u64,
    /// Runtime of the parts that can be parallelized, nanoseconds.
    pub parallelizable_nanos: u64,
}

impl RuntimeFractions {
    /// The sequential fraction (Table VI's last column): the higher it is,
    /// the lower the parallel potential (Amdahl).
    pub fn sequential_fraction(&self) -> f64 {
        let total = self.sequential_nanos + self.parallelizable_nanos;
        if total == 0 {
            return 0.0;
        }
        self.sequential_nanos as f64 / total as f64
    }

    /// Amdahl's-law speedup bound for `threads` workers.
    pub fn amdahl_bound(&self, threads: usize) -> f64 {
        let s = self.sequential_fraction();
        if threads == 0 {
            return 1.0;
        }
        1.0 / (s + (1.0 - s) / threads as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_factor() {
        let s = Slowdown {
            plain_nanos: 100,
            instrumented_nanos: 4_713,
        };
        assert!((s.factor() - 47.13).abs() < 1e-9);
        let zero = Slowdown {
            plain_nanos: 0,
            instrumented_nanos: 10,
        };
        assert_eq!(zero.factor(), 0.0);
    }

    #[test]
    fn reduction_matches_paper_numbers() {
        // Table IV bottom line: 104 instances, 24 flagged → 76.92 %.
        let r = SearchSpaceReduction {
            total_instances: 104,
            flagged_instances: 24,
        };
        assert!((r.reduction() - 0.7692).abs() < 1e-4);
        assert_eq!(r.render(), "24 of 104 (76.92%)");
        // Algorithmia row: 16 → 4 = 75.00 %.
        let a = SearchSpaceReduction {
            total_instances: 16,
            flagged_instances: 4,
        };
        assert!((a.reduction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn speedup_factor() {
        let s = Speedup {
            sequential_nanos: 490,
            parallel_nanos: 170,
        };
        assert!((s.factor() - 2.882).abs() < 0.01);
    }

    #[test]
    fn fractions_and_amdahl() {
        // Table VI, CPU Benchmarks: 7600 ms sequential, 460 ms parallel.
        let f = RuntimeFractions {
            sequential_nanos: 7_600,
            parallelizable_nanos: 460,
        };
        assert!((f.sequential_fraction() - 0.9429).abs() < 1e-3);
        // With a 94 % sequential fraction even 8 cores cap out near 1.06.
        assert!(f.amdahl_bound(8) < 1.1);
        // gpdotnet: 7000 vs 173000 → 3.89 % sequential, big headroom.
        let g = RuntimeFractions {
            sequential_nanos: 7_000,
            parallelizable_nanos: 173_000,
        };
        assert!((g.sequential_fraction() - 0.0389).abs() < 1e-3);
        assert!(g.amdahl_bound(8) > 5.0);
    }

    #[test]
    fn measure_avg_runs_the_closure() {
        let mut count = 0;
        let nanos = measure_avg_nanos(5, || count += 1);
        assert_eq!(count, 5);
        // Can't assert much about time, but it must be finite and small-ish.
        assert!(nanos < 1_000_000_000);
    }

    #[test]
    fn zero_runs_clamped_to_one() {
        let mut count = 0;
        measure_avg_nanos(0, || count += 1);
        assert_eq!(count, 1);
    }
}
