//! Tabular exports: reports as CSV for spreadsheets and downstream tooling.
//!
//! The paper's tables are exactly this kind of artifact; `repro` prints
//! them, and this module gives users the same data machine-readably.

use crate::report::Report;

/// Escape one CSV field (RFC-4180 style: quote when needed, double quotes).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row per instance: site, kind, events, pattern/use-case counts, and
/// the headline metrics the classifier used.
pub fn instances_csv(report: &Report) -> String {
    let mut out = String::from(
        "instance_id,class,method,position,ds_kind,elem_type,origin,events,threads,\
         patterns,insert_phase_share,longest_insert_run,search_ops,read_pattern_count,\
         regular,use_cases,advisories\n",
    );
    for inst in &report.instances {
        let m = &inst.analysis.metrics;
        let cases: Vec<String> = inst
            .use_cases
            .iter()
            .map(|u| u.kind.abbrev().to_string())
            .collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{:?},{},{},{},{:.4},{},{},{},{},{},{}\n",
            inst.instance.id.0,
            field(&inst.instance.site.class),
            field(&inst.instance.site.method),
            inst.instance.site.position,
            inst.instance.kind,
            field(&inst.instance.elem_type),
            inst.instance.origin,
            inst.events,
            inst.analysis.threads.thread_count,
            inst.analysis.patterns.len(),
            m.insert_phase_share,
            m.longest_insert_run,
            m.search_ops,
            m.read_pattern_count,
            inst.regularity.is_regular(),
            field(&cases.join("+")),
            inst.advisories.len(),
        ));
    }
    out
}

/// One row per detected use case: the Table-V columns plus the evidence.
pub fn use_cases_csv(report: &Report) -> String {
    let mut out =
        String::from("n,class,method,position,data_structure,use_case,parallel,evidence\n");
    for (n, uc) in report.all_use_cases().iter().enumerate() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            n + 1,
            field(&uc.instance.site.class),
            field(&uc.instance.site.method),
            uc.instance.site.position,
            field(&uc.instance.display_type()),
            uc.kind,
            uc.kind.is_parallel(),
            field(&uc.reason()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dsspy;
    use dsspy_collections::{site, SpyVec};

    fn sample() -> Report {
        Dsspy::new().profile(|session| {
            let mut hot = SpyVec::register(session, site!("hot"));
            for i in 0..300 {
                hot.add(i);
            }
            let mut quiet: SpyVec<String> = SpyVec::register(session, site!("quiet"));
            quiet.add("a,b \"c\"".into());
        })
    }

    #[test]
    fn instances_csv_shape() {
        let csv = instances_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 instances");
        assert!(lines[0].starts_with("instance_id,class"));
        assert!(lines[1].contains("hot"));
        assert!(lines[1].contains("LI"));
        assert!(lines[2].contains("quiet"));
        // Every row has the same number of (unquoted) columns as the header.
        let cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), cols);
    }

    #[test]
    fn use_cases_csv_shape() {
        let csv = use_cases_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "header + 1 case");
        assert!(lines[1].contains("Long-Insert"));
        assert!(lines[1].contains("true"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        // The evidence column survives intact (no commas → no quoting).
        let csv = use_cases_csv(&sample());
        assert!(csv.contains("longest insertion"));
    }

    #[test]
    fn empty_report_exports_headers_only() {
        let report = Dsspy::new().profile(|_| {});
        assert_eq!(instances_csv(&report).lines().count(), 1);
        assert_eq!(use_cases_csv(&report).lines().count(), 1);
    }
}
