//! Transformation sketches: from recommended action to concrete code.
//!
//! The paper closes with: "For now, each recommendation needs to be
//! implemented manually; however automated transformation is possible if
//! the recommended action is clearly specified" (§VIII, citing the
//! AutoFutures work [21]). This module is that next step in miniature: for
//! every detected use case it emits a *sketch* — the concrete before/after
//! code shape using this crate's own parallel runtime — that an engineer
//! (or a refactoring tool) can apply.

use dsspy_usecases::{UseCase, UseCaseKind};
use serde::{Deserialize, Serialize};

/// A concrete refactoring sketch for one detection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransformSketch {
    /// Where to apply it (class/method/position of the flagged instance).
    pub location: String,
    /// The category it addresses.
    pub kind: UseCaseKind,
    /// The sequential shape DSspy believes is present.
    pub before: String,
    /// The recommended parallel/structural replacement.
    pub after: String,
    /// Preconditions the engineer must check before applying — the paper is
    /// explicit that the engineer stays in the loop (§I, "Trust").
    pub preconditions: Vec<String>,
}

impl TransformSketch {
    /// Render the sketch as markdown-ish text for reports.
    pub fn render(&self) -> String {
        let mut out = format!("## {} at {}\n\nBefore:\n```rust\n{}\n```\n\nAfter:\n```rust\n{}\n```\n\nCheck first:\n", self.kind, self.location, self.before, self.after);
        for p in &self.preconditions {
            out.push_str("- ");
            out.push_str(p);
            out.push('\n');
        }
        out
    }
}

/// Produce the transformation sketch for one detected use case.
pub fn sketch_for(uc: &UseCase) -> TransformSketch {
    let location = format!("{}", uc.instance.site);
    match uc.kind {
        UseCaseKind::LongInsert => TransformSketch {
            location,
            kind: uc.kind,
            before: "for i in 0..n {\n    list.add(make_element(i));\n}".into(),
            after: "let list = dsspy_parallel::par_for_init(n, threads, |i| make_element(i));"
                .into(),
            preconditions: vec![
                "element construction must not depend on previously inserted elements".into(),
                "insertion order must be index-determined (it is preserved)".into(),
                "make_element must be Sync (no shared mutable state)".into(),
            ],
        },
        UseCaseKind::ImplementQueue => TransformSketch {
            location,
            kind: uc.kind,
            before: "list.add(item);            // producer\nlet item = list.remove_at(0); // consumer".into(),
            after: "let queue = dsspy_parallel::BlockingQueue::bounded(capacity);\nqueue.push(item)?;            // producer(s)\nwhile let Some(item) = queue.pop() { ... } // consumer(s)".into(),
            preconditions: vec![
                "per-producer FIFO must be sufficient (global order is not preserved across producers)".into(),
                "consumers must tolerate receiving items concurrently".into(),
            ],
        },
        UseCaseKind::SortAfterInsert => TransformSketch {
            location,
            kind: uc.kind,
            before: "for x in input { list.add(x); }\nlist.sort();".into(),
            after: "let mut list = dsspy_parallel::par_map(&input, threads, |x| transform(x));\ndsspy_parallel::par_merge_sort(&mut list, threads);".into(),
            preconditions: vec![
                "the sort proves insertion order is irrelevant — double-check no reader runs between insert and sort".into(),
                "the comparison must be a total order".into(),
            ],
        },
        UseCaseKind::FrequentSearch => TransformSketch {
            location,
            kind: uc.kind,
            before: "let found = list.index_of(&needle);".into(),
            after: "let found = dsspy_parallel::par_find_first(list.raw(), threads, |v| v == &needle);\n// or: switch to a search-optimized structure (BTreeMap / sorted + binary_search)".into(),
            preconditions: vec![
                "the predicate must be side-effect free".into(),
                "if the structure is sorted or sortable, a binary search beats both options".into(),
            ],
        },
        UseCaseKind::FrequentLongRead => TransformSketch {
            location,
            kind: uc.kind,
            before: "let mut best = 0;\nfor i in 0..list.len() {\n    if better(list.get(i), list.get(best)) { best = i; }\n}".into(),
            after: "let best = dsspy_parallel::par_max_by_key(list.raw(), threads, |v| key(v));".into(),
            preconditions: vec![
                "confirm the loop is a search/reduction (DSspy sees the access pattern, not the intent)".into(),
                "the key/reduction must be associative and side-effect free".into(),
            ],
        },
        UseCaseKind::InsertDeleteFront => TransformSketch {
            location,
            kind: uc.kind,
            before: "array = resize_and_shift(array, ...); // per insert/delete".into(),
            after: "let mut list = VecDeque::new(); // or SpyDeque while profiling\nlist.push_front(x); list.pop_front();".into(),
            preconditions: vec![
                "indices held by other code into the array become invalid".into(),
            ],
        },
        UseCaseKind::StackImplementation => TransformSketch {
            location,
            kind: uc.kind,
            before: "list.add(x);\nlet top = list.remove_at(list.len() - 1);".into(),
            after: "stack.push(x);\nlet top = stack.pop();".into(),
            preconditions: vec![
                "no positional reads into the middle of the structure exist".into(),
            ],
        },
        UseCaseKind::WriteWithoutRead => TransformSketch {
            location,
            kind: uc.kind,
            before: "for i in 0..list.len() { list.set(i, Default::default()); } // end of life".into(),
            after: "drop(list); // Drop/GC handles deallocation".into(),
            preconditions: vec![
                "verify no other alias observes the zeroed state".into(),
                "security-sensitive wiping is a legitimate exception".into(),
            ],
        },
    }
}

/// Sketches for every detection of a report, in report order.
pub fn sketches(report: &crate::report::Report) -> Vec<TransformSketch> {
    report
        .all_use_cases()
        .iter()
        .map(|u| sketch_for(u))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dsspy;
    use dsspy_collections::{site, SpyVec};

    #[test]
    fn every_category_has_a_sketch() {
        use dsspy_events::{AllocationSite, DsKind, InstanceId, InstanceInfo};
        for kind in UseCaseKind::ALL {
            let uc = UseCase {
                kind,
                instance: InstanceInfo::new(
                    InstanceId(0),
                    AllocationSite::new("C", "m", 1),
                    DsKind::List,
                    "i32",
                ),
                evidence: vec![],
            };
            let sketch = sketch_for(&uc);
            assert_eq!(sketch.kind, kind);
            assert!(!sketch.before.is_empty());
            assert!(!sketch.after.is_empty());
            assert!(
                !sketch.preconditions.is_empty(),
                "{kind} needs preconditions"
            );
            let rendered = sketch.render();
            assert!(rendered.contains("Before:"));
            assert!(rendered.contains("Check first:"));
        }
    }

    #[test]
    fn report_sketches_follow_detections() {
        let report = Dsspy::new().profile(|session| {
            let mut l = SpyVec::register(session, site!("hot"));
            for i in 0..500 {
                l.add(i);
            }
        });
        let s = sketches(&report);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, UseCaseKind::LongInsert);
        assert!(s[0].after.contains("par_for_init"));
        assert!(s[0].location.contains("hot"));
    }
}
