//! Report diffing: compare two DSspy reports across a refactoring.
//!
//! The paper's intended workflow is iterative — detect, parallelize, run
//! again (§VIII points at integrating DSspy into the refactoring process of
//! [22]). A diff of the before/after reports shows whether the flagged
//! locations actually went away and whether the change introduced new ones.

use serde::{Deserialize, Serialize};

use dsspy_events::AllocationSite;
use dsspy_usecases::UseCaseKind;

use crate::report::Report;

/// One (site, category) detection key.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DetectionKey {
    /// Where the instance was declared.
    pub site: AllocationSite,
    /// Which category fired.
    pub kind: UseCaseKind,
}

/// The difference between two reports.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Detections present in `after` but not `before` (regressions).
    pub introduced: Vec<DetectionKey>,
    /// Detections present in `before` but not `after` (fixed).
    pub resolved: Vec<DetectionKey>,
    /// Detections present in both (still open).
    pub unchanged: Vec<DetectionKey>,
    /// Instance-count change (`after - before`).
    pub instance_delta: isize,
}

impl ReportDiff {
    /// Whether the refactoring strictly improved the report: something was
    /// resolved and nothing was introduced.
    pub fn is_improvement(&self) -> bool {
        !self.resolved.is_empty() && self.introduced.is_empty()
    }

    /// Render a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} resolved, {} introduced, {} unchanged ({:+} instances)",
            self.resolved.len(),
            self.introduced.len(),
            self.unchanged.len(),
            self.instance_delta
        )
    }
}

fn keys_of(report: &Report) -> Vec<DetectionKey> {
    report
        .all_use_cases()
        .iter()
        .map(|u| DetectionKey {
            site: u.instance.site.clone(),
            kind: u.kind,
        })
        .collect()
}

/// Diff two reports by (allocation site, category) keys.
///
/// Sites are the stable identity across runs — instance ids are
/// session-local. Multiset semantics: a site firing the same category twice
/// in `before` and once in `after` yields one resolved and one unchanged.
pub fn diff_reports(before: &Report, after: &Report) -> ReportDiff {
    let before_keys = keys_of(before);
    let mut after_keys = keys_of(after);

    let mut resolved = Vec::new();
    let mut unchanged = Vec::new();
    for key in before_keys {
        if let Some(pos) = after_keys.iter().position(|k| *k == key) {
            after_keys.remove(pos);
            unchanged.push(key);
        } else {
            resolved.push(key);
        }
    }
    ReportDiff {
        introduced: after_keys,
        resolved,
        unchanged,
        instance_delta: after.instance_count() as isize - before.instance_count() as isize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dsspy;
    use dsspy_collections::{site, SpyVec};

    fn report_with_hot_list(hot: bool) -> Report {
        Dsspy::new().profile(|session| {
            let mut l = SpyVec::register(
                session,
                dsspy_events::AllocationSite::new("App", "load", 10),
            );
            let n = if hot { 500 } else { 10 };
            for i in 0..n {
                l.add(i);
            }
            let mut other = SpyVec::register(session, site!("other"));
            other.add(1);
        })
    }

    #[test]
    fn fixing_a_hot_spot_shows_as_resolved() {
        let before = report_with_hot_list(true);
        let after = report_with_hot_list(false);
        let diff = diff_reports(&before, &after);
        assert_eq!(diff.resolved.len(), 1);
        assert_eq!(diff.resolved[0].kind, UseCaseKind::LongInsert);
        assert!(diff.introduced.is_empty());
        assert!(diff.unchanged.is_empty());
        assert!(diff.is_improvement());
        assert!(diff.summary().contains("1 resolved"));
    }

    #[test]
    fn regression_shows_as_introduced() {
        let before = report_with_hot_list(false);
        let after = report_with_hot_list(true);
        let diff = diff_reports(&before, &after);
        assert_eq!(diff.introduced.len(), 1);
        assert!(!diff.is_improvement());
    }

    #[test]
    fn identical_reports_diff_to_unchanged() {
        let a = report_with_hot_list(true);
        let b = report_with_hot_list(true);
        let diff = diff_reports(&a, &b);
        assert!(diff.resolved.is_empty());
        assert!(diff.introduced.is_empty());
        assert_eq!(diff.unchanged.len(), 1);
        assert_eq!(diff.instance_delta, 0);
    }

    #[test]
    fn instance_delta_tracks_structure_count() {
        let before = report_with_hot_list(false);
        let after = Dsspy::new().profile(|session| {
            let _a: SpyVec<i32> = SpyVec::register(session, site!("a"));
            let _b: SpyVec<i32> = SpyVec::register(session, site!("b"));
            let _c: SpyVec<i32> = SpyVec::register(session, site!("c"));
        });
        let diff = diff_reports(&before, &after);
        assert_eq!(diff.instance_delta, 1);
    }
}
