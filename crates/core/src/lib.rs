//! # dsspy-core — the DSspy pipeline
//!
//! The paper's Fig. 4 pipeline: *Instrumentation → Execution → Profiles →
//! Pattern detection → Use case generation → Advice.* The substrates live in
//! their own crates (`dsspy-collect`, `dsspy-patterns`, `dsspy-usecases`);
//! this crate glues them into the tool a user drives:
//!
//! ```
//! use dsspy_core::Dsspy;
//! use dsspy_collections::{site, SpyVec};
//!
//! let report = Dsspy::new().profile(|session| {
//!     let mut list = SpyVec::register(session, site!("quickstart"));
//!     for i in 0..500 {
//!         list.add(i);
//!     }
//! });
//! assert_eq!(report.instance_count(), 1);
//! assert_eq!(report.flagged_instance_count(), 1); // Long-Insert fires
//! ```
//!
//! The [`Report`] carries, per instance: the mined pattern instances, the
//! derived metrics, the regularity verdict, and the detected use cases with
//! evidence and recommended actions — plus the aggregate *search space
//! reduction* number the evaluation (§V) leads with.

#![warn(missing_docs)]

pub mod diff;
pub mod evaluation;
pub mod export;
pub mod pipeline;
pub mod report;
pub mod transform;

pub use diff::{diff_reports, DetectionKey, ReportDiff};
pub use evaluation::{
    measure_avg_nanos, RuntimeFractions, SearchSpaceReduction, Slowdown, Speedup,
};
pub use export::{instances_csv, use_cases_csv};
pub use pipeline::{AnalysisConfig, Dsspy};
pub use report::{AnalysisTimings, InstanceReport, InstanceTiming, Report};
pub use transform::{sketch_for, sketches, TransformSketch};
