//! The analysis pipeline: capture → patterns → use cases → report.
//!
//! Each instance's analysis (mine → regularity gate → classify → advisories)
//! is independent of every other instance's, so the pipeline dogfoods its
//! own substrate: [`Dsspy::analyze_capture`] fans the per-instance work out
//! over [`dsspy_parallel::par_map`], which preserves registration order —
//! the resulting [`Report`] is byte-for-byte identical no matter how many
//! worker threads ran it.

use std::time::Instant;

use dsspy_collect::{Capture, Session, SessionConfig};
use dsspy_events::RuntimeProfile;
use dsspy_patterns::{analyze, regularity, MinerConfig, RegularityConfig};
use dsspy_telemetry::{overhead::signals, FlightRecorder, OverheadReport, Telemetry};
use dsspy_usecases::{advisories, classify, AdvisoryConfig, Thresholds};
use serde::{Deserialize, Serialize};

use crate::report::{AnalysisTimings, InstanceReport, InstanceTiming, Report};

/// Configuration of the post-mortem analysis phases.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Pattern-miner tunables.
    pub miner: MinerConfig,
    /// Use-case thresholds (§III-B defaults).
    pub thresholds: Thresholds,
    /// Regularity-gate tunables (Table II).
    pub regularity: RegularityConfig,
    /// Selective-profiler mode (§IV): analyze only manually instrumented
    /// instances (`Session::register_manual` / `SpyVec::register_manual`).
    #[serde(default)]
    pub selective: bool,
    /// Misuse-advisory tunables (§II-A structural findings).
    #[serde(default = "AdvisoryConfig::default")]
    pub advisories: AdvisoryConfig,
    /// Worker threads for the per-instance analysis fan-out: `0` (the
    /// default) resolves to the `DSSPY_TEST_THREADS` environment variable
    /// if set, else [`dsspy_parallel::default_threads`]; `1` runs the
    /// plain sequential loop on the calling thread.
    #[serde(default)]
    pub threads: usize,
}

impl AnalysisConfig {
    /// The worker count the analysis will actually use.
    ///
    /// An explicit `threads` setting always wins. `0` defers first to the
    /// `DSSPY_TEST_THREADS` environment variable — how the CI matrix pins
    /// every default-width run in the suite to 1/2/4 workers without
    /// touching call sites (the report is identical at any width, so this
    /// only varies *how* it is computed) — and then to one worker per core.
    pub fn resolved_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("DSSPY_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        dsspy_parallel::default_threads()
    }
}

/// The DSspy tool: one value bundling session and analysis configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dsspy {
    /// Runtime-collection tunables.
    pub session: SessionConfig,
    /// Post-mortem analysis tunables.
    pub analysis: AnalysisConfig,
}

impl Dsspy {
    /// A DSspy instance with all defaults (the paper's thresholds).
    pub fn new() -> Dsspy {
        Dsspy::default()
    }

    /// Replace the use-case thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Dsspy {
        self.analysis.thresholds = thresholds;
        self
    }

    /// Replace the miner configuration.
    pub fn with_miner(mut self, miner: MinerConfig) -> Dsspy {
        self.analysis.miner = miner;
        self
    }

    /// Enable selective-profiler mode: only manually instrumented instances
    /// are analyzed and reported (§IV).
    pub fn selective(mut self) -> Dsspy {
        self.analysis.selective = true;
        self
    }

    /// Set the analysis worker-thread count (`0` = one per core, `1` =
    /// sequential). The report is identical for every value; only the wall
    /// clock changes.
    pub fn with_threads(mut self, threads: usize) -> Dsspy {
        self.analysis.threads = threads;
        self
    }

    /// Run `program` under a profiling session and analyze what it did.
    ///
    /// This is the full Fig. 4 pipeline in one call: the closure plays the
    /// instrumented program (create `Spy*` structures against the provided
    /// session and exercise them), and the returned [`Report`] is the
    /// *Advice* end of the pipeline.
    pub fn profile(&self, program: impl FnOnce(&Session)) -> Report {
        self.profile_with(program, &Telemetry::disabled())
    }

    /// [`Dsspy::profile`] under observation: the session's collector
    /// reports into `telemetry`, the analysis records per-instance spans,
    /// and the resulting report embeds the snapshot with Table IV-style
    /// overhead accounting.
    pub fn profile_with(&self, program: impl FnOnce(&Session), telemetry: &Telemetry) -> Report {
        let session = Session::with_telemetry(self.session, telemetry.clone());
        program(&session);
        let capture = session.finish();
        self.analyze_capture_with(&capture, telemetry)
    }

    /// [`Dsspy::profile_with`] under *full* observation: telemetry plus a
    /// [`FlightRecorder`] threaded into the session's collector, so every
    /// batch receipt, drop and queue-pressure crossing of the run lands in
    /// the recorder's causal ring (and auto-dumps on incident when the
    /// recorder was configured with a dump path). The flight recorder is a
    /// cheap cloneable handle; keep one and read
    /// [`FlightRecorder::dump`](dsspy_telemetry::FlightRecorder::dump)
    /// after this returns.
    pub fn profile_observed(
        &self,
        program: impl FnOnce(&Session),
        telemetry: &Telemetry,
        flight: &FlightRecorder,
    ) -> Report {
        let session = Session::builder()
            .config(self.session)
            .telemetry(telemetry.clone())
            .flight(flight.clone())
            .start();
        program(&session);
        let capture = session.finish();
        self.analyze_capture_with(&capture, telemetry)
    }

    /// Post-mortem analysis of an existing capture (e.g. one loaded from
    /// disk or produced by a long-running session managed by the caller).
    ///
    /// Instances are analyzed independently on
    /// [`AnalysisConfig::resolved_threads`] workers; results are
    /// reassembled in registration order, so the report does not depend on
    /// the thread count.
    pub fn analyze_capture(&self, capture: &Capture) -> Report {
        self.analyze_capture_with(capture, &Telemetry::disabled())
    }

    /// [`Dsspy::analyze_capture`] under observation.
    ///
    /// Each instance's mining and classification phases are recorded as
    /// `mine#i` / `classify#i` spans (category `analysis`, attributed to the
    /// worker thread that ran them — worker utilization and load imbalance
    /// of the fan-out fall out of those), the whole pass as an
    /// `analyze_capture` span (category `pipeline`). The report embeds the
    /// snapshot, with [`OverheadReport::account`] run against the capture's
    /// session duration. With a disabled handle this is exactly
    /// [`Dsspy::analyze_capture`]: no spans, no snapshot, `telemetry: None`.
    pub fn analyze_capture_with(&self, capture: &Capture, telemetry: &Telemetry) -> Report {
        let started = Instant::now();
        let pass_start_nanos = telemetry.now_nanos();
        let profiles: Vec<(usize, &RuntimeProfile)> = capture
            .profiles
            .iter()
            .filter(|profile| {
                !self.analysis.selective || profile.instance.origin == dsspy_events::Origin::Manual
            })
            .enumerate()
            .collect();
        let threads = self.analysis.resolved_threads();
        telemetry.gauge("analysis.threads").set(threads as u64);
        telemetry
            .counter("analysis.instances")
            .add(profiles.len() as u64);
        let analyze_indexed =
            |&(idx, profile): &(usize, &RuntimeProfile)| self.analyze_one(idx, profile, telemetry);
        let analyzed = if threads <= 1 {
            profiles.iter().map(analyze_indexed).collect()
        } else {
            dsspy_parallel::par_map(&profiles, threads, analyze_indexed)
        };
        let mut instances = Vec::with_capacity(analyzed.len());
        let mut per_instance = Vec::with_capacity(analyzed.len());
        for (report, timing) in analyzed {
            instances.push(report);
            per_instance.push(timing);
        }
        let mut report = Report {
            instances,
            stats: capture.stats,
            session_nanos: capture.session_nanos,
            timings: AnalysisTimings {
                per_instance,
                wall_nanos: started.elapsed().as_nanos() as u64,
                threads,
            },
            telemetry: None,
        };
        if telemetry.is_enabled() {
            // Recorded directly (not as a guard) so the workers' per-
            // instance spans stay at depth 0 — the wall-clock span of the
            // pass lives in its own category.
            telemetry.record_span(
                signals::PIPELINE_CAT,
                "analyze_capture",
                pass_start_nanos,
                telemetry.now_nanos().saturating_sub(pass_start_nanos),
            );
            let mut snapshot = telemetry.snapshot();
            snapshot.overhead = Some(OverheadReport::account(&snapshot, capture.session_nanos));
            report.telemetry = Some(snapshot);
        }
        report
    }

    /// The per-instance unit of work: mine, gate, classify, advise — with
    /// each phase timed (and recorded as `mine#idx` / `classify#idx` spans
    /// when observed).
    fn analyze_one(
        &self,
        idx: usize,
        profile: &RuntimeProfile,
        telemetry: &Telemetry,
    ) -> (InstanceReport, InstanceTiming) {
        let mining = Instant::now();
        let span = telemetry.span_lazy(signals::ANALYSIS_CAT, || format!("mine#{idx}"));
        let analysis = analyze(profile, &self.analysis.miner);
        let verdict = regularity(&analysis, &self.analysis.regularity);
        drop(span);
        let mining_nanos = mining.elapsed().as_nanos() as u64;

        let classify_started = Instant::now();
        let span = telemetry.span_lazy(signals::ANALYSIS_CAT, || format!("classify#{idx}"));
        let use_cases = classify(&profile.instance, &analysis, &self.analysis.thresholds);
        let advisories = advisories(profile, &self.analysis.advisories);
        drop(span);
        let classify_nanos = classify_started.elapsed().as_nanos() as u64;

        (
            InstanceReport {
                instance: profile.instance.clone(),
                events: profile.len(),
                analysis,
                regularity: verdict,
                use_cases,
                advisories,
            },
            InstanceTiming {
                mining_nanos,
                classify_nanos,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsspy_collections::{site, SpyQueue, SpyVec};
    use dsspy_usecases::UseCaseKind;

    #[test]
    fn pipeline_detects_long_insert_end_to_end() {
        let report = Dsspy::new().profile(|session| {
            let mut list = SpyVec::register(session, site!("fill"));
            for i in 0..500 {
                list.add(i);
            }
        });
        assert_eq!(report.instance_count(), 1);
        let cases = report.all_use_cases();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].kind, UseCaseKind::LongInsert);
    }

    #[test]
    fn untouched_instances_stay_unflagged() {
        let report = Dsspy::new().profile(|session| {
            let _idle: SpyVec<i32> = SpyVec::register(session, site!("idle"));
            let mut hot = SpyVec::register(session, site!("hot"));
            for i in 0..500 {
                hot.add(i);
            }
        });
        assert_eq!(report.instance_count(), 2);
        assert_eq!(report.flagged_instance_count(), 1);
        assert!((report.search_space_reduction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_usage_on_a_list_flagged_iq_but_not_on_a_queue() {
        let report = Dsspy::new().profile(|session| {
            // Misuse: a list as a queue.
            let mut list = SpyVec::register(session, site!("list_as_queue"));
            for i in 0..100 {
                list.add(i);
                if list.len() > 2 {
                    list.remove_at(0);
                }
            }
            // Proper queue: same traffic shape.
            let mut q = SpyQueue::register(session, site!("real_queue"));
            for i in 0..100 {
                q.enqueue(i);
                if q.len() > 2 {
                    q.dequeue();
                }
            }
        });
        let iq: Vec<_> = report
            .all_use_cases()
            .into_iter()
            .filter(|u| u.kind == UseCaseKind::ImplementQueue)
            .collect();
        assert_eq!(iq.len(), 1);
        assert_eq!(iq[0].instance.site.method, "list_as_queue");
    }

    #[test]
    fn profile_observed_records_a_clean_flight_chain() {
        use dsspy_telemetry::{FlightConfig, FlightEventKind};
        let telemetry = Telemetry::enabled();
        let flight =
            dsspy_telemetry::FlightRecorder::with_telemetry(FlightConfig::default(), &telemetry);
        let report = Dsspy::new().profile_observed(
            |session| {
                let mut list = SpyVec::register(session, site!("observed"));
                for i in 0..300 {
                    list.add(i);
                }
            },
            &telemetry,
            &flight,
        );
        assert_eq!(report.instance_count(), 1);
        let dump = flight.dump();
        assert!(dump.incidents.is_empty(), "{:?}", dump.incidents);
        let sessions = dump.sessions();
        assert_eq!(sessions.len(), 1, "{sessions:?}");
        assert!(dump
            .events
            .iter()
            .any(|e| matches!(e.kind, FlightEventKind::BatchReceived { .. })));
        assert!(matches!(
            dump.events.last().map(|e| &e.kind),
            Some(FlightEventKind::SessionStop { .. })
        ));
    }

    #[test]
    fn analyze_capture_is_reusable() {
        let session = Session::new();
        {
            let mut list = SpyVec::register(&session, site!("x"));
            for i in 0..200 {
                list.add(i);
            }
        }
        let capture = session.finish();
        let dsspy = Dsspy::new();
        let r1 = dsspy.analyze_capture(&capture);
        let r2 = dsspy.analyze_capture(&capture);
        assert_eq!(r1.flagged_instance_count(), r2.flagged_instance_count());
        assert_eq!(r1.all_use_cases().len(), r2.all_use_cases().len());
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use dsspy_collections::{site, SpyVec};

    #[test]
    fn selective_mode_reports_only_manual_instances() {
        let drive = |dsspy: Dsspy| {
            dsspy.profile(|session| {
                let mut auto = SpyVec::register(session, site!("auto_hot"));
                for i in 0..500 {
                    auto.add(i);
                }
                let mut manual = SpyVec::register_manual(session, site!("manual_hot"));
                for i in 0..500 {
                    manual.add(i);
                }
            })
        };
        let full = drive(Dsspy::new());
        assert_eq!(full.instance_count(), 2);
        assert_eq!(full.all_use_cases().len(), 2);

        let selective = drive(Dsspy::new().selective());
        assert_eq!(selective.instance_count(), 1);
        let cases = selective.all_use_cases();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].instance.site.method, "manual_hot");
    }
}
