//! Re-run the paper's empirical study (§II): generate the 37-program
//! corpus, scan every program's source for data-structure declarations, and
//! print Table I plus the Fig. 1 occurrence table. Optionally writes the
//! Fig. 1 chart as SVG.
//!
//! ```sh
//! cargo run --example corpus_study             # tables to stdout
//! cargo run --example corpus_study -- fig1.svg # also write the chart
//! ```

use dsspy::study::{build_corpus, domain_rows, generate_source, occurrence_rows, scan_source};
use dsspy::viz::{occurrence_svg, occurrence_table, OccurrenceRow};

fn main() {
    // Scan one program end-to-end to show the methodology.
    let corpus = build_corpus();
    let sample = corpus
        .iter()
        .find(|m| m.name == "gpdotnet")
        .expect("exists");
    let source = generate_source(sample);
    let scan = scan_source(&source);
    println!(
        "scanned {} ({} lines): {} dynamic declarations, {} arrays, {} classes, {} list members\n",
        sample.name,
        scan.lines,
        scan.dynamic_count(),
        scan.array_count(),
        scan.classes,
        scan.member_lists
    );

    // The full study.
    let rows = occurrence_rows();
    println!("Table I — domains");
    for d in domain_rows(&rows) {
        println!(
            "  {:<40} {:>4} programs {:>5} instances {:>8} LOC",
            d.name, d.programs, d.instances, d.loc
        );
    }
    let total: usize = rows.iter().map(|r| r.total_dynamic()).sum();
    println!("  Σ {total} dynamic instances (paper: 1,960)\n");

    let viz_rows: Vec<OccurrenceRow> = rows
        .iter()
        .map(|r| OccurrenceRow::from_kind_counts(r.name.clone(), r.domain, &r.by_kind))
        .collect();
    println!("{}", occurrence_table(&viz_rows));

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, occurrence_svg(&viz_rows)).expect("write SVG");
        println!("Fig. 1 chart written to {path}");
    }
}
