//! Capture persistence + re-analysis: profile once, save the capture to
//! disk, reload it later and re-analyze with different thresholds — the
//! post-mortem workflow the paper's two-phase design (§IV) enables — and
//! diff the verdicts.
//!
//! ```sh
//! cargo run --example capture_replay
//! ```

use dsspy::collect::{load_capture, save_capture, Session};
use dsspy::collections::{site, SpyVec};
use dsspy::core::{diff_reports, Dsspy};
use dsspy::usecases::Thresholds;

fn main() {
    // --- 1. Run and capture -------------------------------------------------
    let session = Session::new();
    {
        let mut hot = SpyVec::register(&session, site!("ingest"));
        for i in 0..250 {
            hot.add(i);
        }
        let mut warm = SpyVec::register(&session, site!("staging"));
        for i in 0..60 {
            warm.add(i);
        }
    }
    let capture = session.finish();
    println!(
        "captured {} events across {} instances",
        capture.event_count(),
        capture.instance_count()
    );

    // --- 2. Persist and reload ----------------------------------------------
    let path = std::env::temp_dir().join("dsspy-example.dsspycap");
    save_capture(&capture, &path).expect("save capture");
    let reloaded = load_capture(&path).expect("load capture");
    println!(
        "round-tripped through {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    assert_eq!(reloaded.event_count(), capture.event_count());

    // --- 3. Analyze twice, diff the verdicts ---------------------------------
    let default_report = Dsspy::new().analyze_capture(&reloaded);
    let lenient_report = Dsspy::new()
        .with_thresholds(Thresholds {
            li_min_run_len: 50, // flag the 60-element fill too
            ..Thresholds::default()
        })
        .analyze_capture(&reloaded);

    println!(
        "\ndefault thresholds: {} use case(s); lenient: {} use case(s)",
        default_report.all_use_cases().len(),
        lenient_report.all_use_cases().len()
    );
    let diff = diff_reports(&default_report, &lenient_report);
    println!("lenient vs default: {}", diff.summary());
    for key in &diff.introduced {
        println!("  newly flagged: {} ({})", key.site, key.kind);
    }

    std::fs::remove_file(&path).ok();
}
