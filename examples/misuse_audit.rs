//! Structural misuse in action (§II-A): a priority structure hand-rolled
//! as a binary heap *on a list*, and a lookup table forced through linear
//! scans. DSspy's advisories catch both, alongside any use cases.
//!
//! ```sh
//! cargo run --example misuse_audit
//! ```

use dsspy::collections::{site, SpyVec};
use dsspy::core::Dsspy;

fn main() {
    let report = Dsspy::new().profile(|session| {
        // --- misuse 1: a binary heap indexed into a list -----------------
        let mut heap = SpyVec::register(session, site!("task_priorities"));
        for i in 0..255u64 {
            heap.add((i * 97) % 256);
        }
        // Repeated sift-down walks: i → 2i+1 / 2i+2.
        for round in 0..50usize {
            let mut i = 0usize;
            while 2 * i + 1 < heap.len() {
                let _ = *heap.get(i);
                i = if (round + i).is_multiple_of(2) {
                    2 * i + 1
                } else {
                    2 * i + 2
                };
            }
        }

        // --- misuse 2: a "map" that linearly searches for every key -------
        let mut directory = SpyVec::register(session, site!("user_directory"));
        for i in 0..40u64 {
            directory.add(i * 11);
        }
        for key in 0..200u64 {
            let _ = directory.contains(&((key * 7) % 440));
        }
    });

    println!("{}", report.summary());
    println!();
    let advisories = report.render_advisories();
    if advisories.is_empty() {
        println!("no structural advisories (unexpected for this demo)");
    } else {
        println!("{advisories}");
    }
    // The use-case listing still runs alongside.
    println!("{}", report.render_use_cases());
}
