//! Quickstart: profile a small program and read DSspy's advice.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dsspy::collections::{site, SpyVec};
use dsspy::core::Dsspy;

fn main() {
    // 1. Run your program with instrumented collections inside a session.
    let report = Dsspy::new().profile(|session| {
        // A list that is bulk-loaded: DSspy will flag Long-Insert.
        let mut readings = SpyVec::register(session, site!("load_readings"));
        for i in 0..5_000 {
            readings.add(f64::from(i) * 0.25);
        }

        // A list that is re-scanned for every query: Frequent-Long-Read.
        let mut lookup = SpyVec::register(session, site!("lookup_table"));
        lookup.extend((0..200).map(|i| i * 3));
        for query in 0..15 {
            let hits = lookup.iter().filter(|v| **v % (query + 2) == 0).count();
            let _ = hits;
        }

        // A scratch list used sparingly: never flagged.
        let mut scratch = SpyVec::register(session, site!("scratch"));
        scratch.add(1);
        scratch.add(2);
    });

    // 2. Read the advice.
    println!("{}", report.summary());
    println!();
    println!("{}", report.render_use_cases());

    // 3. The headline metric: how much of the search space DSspy removed.
    println!(
        "search space reduction: {:.1}% ({} of {} instances need a look)",
        report.search_space_reduction() * 100.0,
        report.flagged_instance_count(),
        report.instance_count()
    );
}
