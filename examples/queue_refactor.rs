//! The Implement-Queue story end to end: DSspy catches a list being used as
//! a queue, prints the transformation sketch, and the refactored version
//! runs producers and consumers concurrently on the parallel queue.
//!
//! ```sh
//! cargo run --example queue_refactor
//! ```

use dsspy::collections::{site, SpyVec};
use dsspy::core::{sketches, Dsspy};
use dsspy::parallel::produce_consume;

fn main() {
    // --- 1. The misuse: a work list implemented on a list ------------------
    let report = Dsspy::new().profile(|session| {
        let mut worklist = SpyVec::register(session, site!("dispatch_jobs"));
        for job in 0..500u32 {
            worklist.add(job);
            // The "consumer" pulls from the front of the same list.
            if worklist.len() > 8 {
                let job = worklist.remove_at(0);
                std::hint::black_box(job);
            }
        }
    });
    println!("{}", report.render_use_cases());

    // --- 2. The sketch DSspy proposes ---------------------------------------
    for sketch in sketches(&report) {
        println!("{}", sketch.render());
    }

    // --- 3. The refactored pipeline ------------------------------------------
    let (produced, outputs) = produce_consume(
        4, // consumers
        8, // queue capacity (same working depth as the list version)
        |push| {
            for job in 0..500u32 {
                push(job);
            }
            500u32
        },
        |job: u32| u64::from(job) * 3 + 1,
    );
    println!(
        "refactored: produced {produced} jobs, consumed {} results (sum {})",
        outputs.len(),
        outputs.iter().sum::<u64>()
    );
    assert_eq!(outputs.len(), 500);
}
