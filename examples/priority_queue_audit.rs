//! The paper's Algorithmia story (§V, use case two): a priority queue
//! implemented on a list, detected via Frequent-Long-Read, then sped up by
//! following the recommendation — a parallel max-search. The paper measured
//! 2.30x on a 100,000-element list.
//!
//! ```sh
//! cargo run --release --example priority_queue_audit
//! ```

use std::time::Instant;

use dsspy::collections::{site, SpyVec};
use dsspy::core::Dsspy;
use dsspy::parallel::{default_threads, par_max_by_key};

const N: usize = 100_000;
const DEQUEUES: usize = 12;

fn priority(i: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
    x ^= x >> 31;
    x
}

fn main() {
    // --- 1. Profile the suspicious implementation ------------------------
    let report = Dsspy::new().profile(|session| {
        let mut pq = SpyVec::register(session, site!("priority_queue"));
        for i in 0..2_000u64 {
            pq.add(priority(i));
        }
        // Every "dequeue" linearly searches for the max: the disguised
        // search DSspy's Frequent-Long-Read is built to catch.
        for _ in 0..DEQUEUES {
            let mut best = 0usize;
            let mut best_value = 0u64;
            for i in 0..pq.len() {
                let v = *pq.get(i);
                if v > best_value {
                    best = i;
                    best_value = v;
                }
            }
            pq.set(best, 0);
        }
    });
    println!("{}", report.render_use_cases());

    // --- 2. Follow the recommendation and measure ------------------------
    let threads = default_threads();
    let data: Vec<u64> = (0..N as u64).map(priority).collect();

    let t0 = Instant::now();
    let mut seq_best = 0usize;
    for _ in 0..50 {
        let mut best = 0usize;
        for (i, v) in data.iter().enumerate() {
            if *v > data[best] {
                best = i;
            }
        }
        seq_best = best;
    }
    let sequential = t0.elapsed();

    let t1 = Instant::now();
    let mut par_best = None;
    for _ in 0..50 {
        par_best = par_max_by_key(&data, threads, |v| *v);
    }
    let parallel = t1.elapsed();

    assert_eq!(Some(seq_best), par_best, "same element found");
    println!(
        "max-search on {N} elements: sequential {:?}, parallel({threads}) {:?} — speedup {:.2}x (paper: 2.30x)",
        sequential / 50,
        parallel / 50,
        sequential.as_secs_f64() / parallel.as_secs_f64()
    );
}
