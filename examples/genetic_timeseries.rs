//! The gpdotnet walkthrough: genetic programming over a time series,
//! profiled by DSspy — this regenerates the paper's Table V output — then
//! accelerated by following the two recommendations that matter
//! (parallelize the population insert + treat the fitness scan as a search).
//!
//! ```sh
//! cargo run --release --example genetic_timeseries
//! ```

use std::time::Instant;

use dsspy::core::Dsspy;
use dsspy::parallel::default_threads;
use dsspy::workloads::programs::gpdotnet::GpDotNet;
use dsspy::workloads::{Mode, Scale, Workload};

fn main() {
    let w = GpDotNet;

    // --- 1. The Table V output --------------------------------------------
    let report = Dsspy::new().profile(|session| {
        w.run(Scale::Test, Mode::Instrumented(session));
    });
    println!(
        "gpdotnet: {} data-structure instances, {} use cases, reduction {:.2}% (paper: 37, 5, 86.49%)\n",
        report.instance_count(),
        report.all_use_cases().len(),
        report.use_case_reduction() * 100.0
    );
    println!("{}", report.render_use_cases());

    // --- 2. Follow the recommendations ------------------------------------
    let threads = default_threads();
    let t0 = Instant::now();
    let seq = w.run(Scale::Full, Mode::Plain);
    let sequential = t0.elapsed();
    let t1 = Instant::now();
    let par = w.run(Scale::Full, Mode::Parallel(threads));
    let parallel = t1.elapsed();
    assert_eq!(seq, par, "evolution must be deterministic across modes");
    println!(
        "100-generation-equivalent run: sequential {sequential:?}, parallel({threads}) {parallel:?} — speedup {:.2}x (paper: 2.93x)",
        sequential.as_secs_f64() / parallel.as_secs_f64()
    );
}
