//! The paper's Mandelbrot evaluation as a walkthrough: profile the
//! sequential renderer, print the DSspy report and the profile chart of its
//! hottest structure, then run the recommendation-following parallel
//! version and compare (paper: 3.00x total, §V).
//!
//! ```sh
//! cargo run --release --example fractal_renderer
//! ```

use std::time::Instant;

use dsspy::collect::Session;
use dsspy::core::Dsspy;
use dsspy::parallel::default_threads;
use dsspy::viz::{profile_chart_text, ChartConfig};
use dsspy::workloads::programs::mandelbrot::Mandelbrot;
use dsspy::workloads::{Mode, Scale, Workload};

fn main() {
    let w = Mandelbrot;

    // --- 1. Profile the sequential renderer -------------------------------
    let dsspy = Dsspy::new();
    let mut checksum = 0;
    let report = dsspy.profile(|session| {
        checksum = w.run(Scale::Test, Mode::Instrumented(session));
    });
    println!("{}\n", report.summary());
    println!("{}", report.render_use_cases());

    // Chart the image list (the Long-Insert the paper's use case four hit).
    if let Some(instance) = report
        .instances
        .iter()
        .find(|i| i.instance.site.method == "CreateImage")
    {
        println!(
            "(the CreateImage list saw {} events across {} patterns)",
            instance.events,
            instance.analysis.patterns.len()
        );
    }

    // Re-capture raw events for the chart (profiles live in the capture).
    let session = Session::new();
    let _ = w.run(Scale::Test, Mode::Instrumented(&session));
    let capture = session.finish();
    if let Some(profile) = capture
        .profiles
        .iter()
        .find(|p| p.instance.site.method == "InitAxes")
    {
        println!(
            "{}",
            profile_chart_text(
                profile,
                &ChartConfig {
                    max_columns: 80,
                    text_rows: 10,
                    ansi_colors: false,
                }
            )
        );
    }

    // --- 2. Sequential vs recommendation-following parallel ---------------
    let threads = default_threads();
    let t0 = Instant::now();
    let seq = w.run(Scale::Full, Mode::Plain);
    let sequential = t0.elapsed();
    let t1 = Instant::now();
    let par = w.run(Scale::Full, Mode::Parallel(threads));
    let parallel = t1.elapsed();
    assert_eq!(seq, par, "parallel render must be pixel-identical");
    println!(
        "full-scale render: sequential {sequential:?}, parallel({threads}) {parallel:?} — speedup {:.2}x (paper: 3.00x)",
        sequential.as_secs_f64() / parallel.as_secs_f64()
    );
}
