//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses exactly one piece of crossbeam: the MPMC channel
//! (`crossbeam::channel::{unbounded, bounded, Sender, Receiver}`). This
//! vendored version reimplements it on a `Mutex<VecDeque>` plus two condition
//! variables. Semantics preserved from the real crate:
//!
//! * multi-producer *and* multi-consumer (`Sender` and `Receiver` are both
//!   `Clone`);
//! * FIFO delivery, each message to exactly one receiver;
//! * `send` on a bounded channel blocks while full;
//! * `send` errors once every receiver is gone, `recv` errors once the
//!   channel is empty and every sender is gone.
//!
//! A bounded capacity of 0 (rendezvous channel) is clamped to 1; no caller
//! in this workspace uses rendezvous semantics.

/// The MPMC channel module, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and all
    /// senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now, but senders remain.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half; clone for additional producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone for additional consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        build(None)
    }

    /// A channel that holds at most `cap` messages (`0` is clamped to 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        build(Some(cap.max(1)))
    }

    fn build<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Number of messages currently queued. Producers use this to
        /// observe the pressure *they* are creating (the receiving half has
        /// the same accessor); real crossbeam exposes it on both halves.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Deliver `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.lock();
            if let Some(cap) = self.inner.capacity {
                while state.queue.len() >= cap && state.receivers > 0 {
                    state = self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.inner.lock();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake consumers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take the next message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages queued right now (matches the real crate's
        /// `Receiver::len`; a snapshot, stale as soon as it returns).
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the channel holds no messages right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Take the next message if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.lock();
            match state.queue.pop_front() {
                Some(msg) => {
                    drop(state);
                    self.inner.not_full.notify_one();
                    Ok(msg)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.inner.lock();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // Wake producers blocked on a full bounded queue so they
                // observe the disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn len_reports_queue_depth() {
        let (tx, rx) = unbounded();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
        rx.recv().unwrap();
        assert!(rx.is_empty());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv
            "sent"
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded();
        let mut producers = Vec::new();
        for p in 0..4u32 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let mut all = std::collections::HashSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(all.insert(v), "duplicate delivery of {v}");
            }
        }
        assert_eq!(all.len(), 1000);
    }
}
