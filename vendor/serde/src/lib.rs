//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this vendored
//! version uses a concrete [`Value`] tree as the interchange data model:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds the
//! type from one. The `serde_json` stand-in then formats/parses `Value`s.
//! This is slower than real serde but API-compatible with everything the
//! workspace uses: `derive(Serialize, Deserialize)` with the `default`,
//! `default = "path"` and `skip` field attributes, externally tagged enums,
//! and newtype structs that transparently wrap their inner value.
//!
//! [`Value`] lives here (not in `serde_json`) so the derive macros and the
//! JSON crate share one definition; `serde_json` re-exports it. Maps are
//! ordered `Vec<(String, Value)>` pairs, which keeps serialization
//! deterministic: the same input always renders to the same JSON bytes.

pub use serde_derive::{Deserialize, Serialize};

/// The interchange data model: what every serializable type renders into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order (deterministic round-trips).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Seq(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Map(_))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects, `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// `value["key"]` on objects; missing keys and non-objects yield `Null`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` on arrays; out-of-range and non-arrays yield `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Seq(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: what was expected, what was found, where.
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, while_in: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {while_in}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the interchange data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Ordered-map field lookup, used by derived `Deserialize` impls.
pub fn find_field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// --- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<usize, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "usize"))?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let n = *self as i64;
        if n >= 0 {
            Value::U64(n as u64)
        } else {
            Value::I64(n)
        }
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<isize, DeError> {
        let n = v
            .as_i64()
            .ok_or_else(|| DeError::expected("integer", "isize"))?;
        isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON cannot represent NaN/inf; match serde_json's `null`.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(String::from)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Static-string deserialization leaks the parsed string. The workspace's
/// study tables carry `&'static str` labels; they deserialize rarely (tests
/// only), so the leak is an acceptable stub trade-off.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "&str"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got array of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(3)),
            ("b".to_string(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert!(v["b"].is_array());
        assert!(v["missing"].is_null());
        assert_eq!(v["b"][0].as_bool(), Some(true));
    }

    #[test]
    fn container_round_trips() {
        let original: Vec<(u64, f64)> = vec![(1, 0.5), (2, -3.25)];
        let back = Vec::<(u64, f64)>::from_value(&original.to_value()).unwrap();
        assert_eq!(original, back);

        let arr: [usize; 3] = [7, 8, 9];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);

        let opt: Option<i64> = None;
        assert_eq!(Option::<i64>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn signed_encoding_splits_on_sign() {
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(isize::from_value(&Value::I64(-9)).unwrap(), -9);
    }
}
