//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the slice of the API the dsspy wire codec uses:
//! [`BytesMut`] as an append-only build buffer (`put_*` + `freeze`) and
//! [`Bytes`] as a cursor-style read view (`get_*` + `remaining`), plus the
//! [`Buf`]/[`BufMut`] traits those methods are reached through.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

/// An immutable byte buffer consumed front-to-back.
///
/// Unlike the real crate there is no shared-ownership machinery: the data is
/// a plain `Vec<u8>` plus a read cursor, which is all the codec needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unconsumed length, same as [`Buf::remaining`].
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A copy of the sub-range `range` of the unconsumed bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(
            self.data[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(
            self.data[self.pos..self.pos + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        v
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] turns it into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut b = BytesMut::with_capacity(13);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn bytes_from_vec_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
    }
}
