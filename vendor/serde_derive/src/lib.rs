//! Offline stand-in for `serde_derive`.
//!
//! Real serde_derive builds on `syn`/`quote`; neither is available offline,
//! so this version hand-parses the item's `TokenStream`. That works because
//! the Value-tree data model of the vendored `serde` only ever needs field
//! and variant *names*: serialization reaches values through method calls on
//! `&self.field`, and deserialization lets the struct literal infer every
//! field type. Types are skipped over token-by-token (tracking angle-bracket
//! depth so `Vec<(u64, f64)>` doesn't end a field early).
//!
//! Supported shapes: named structs, tuple structs (1-field transparent, like
//! real serde's newtype handling), and externally tagged enums with unit,
//! newtype, tuple and struct variants (discriminants like `Read = 0` are
//! skipped). Supported field attributes: `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(skip)]`. Generic types are
//! rejected with a clear panic — the workspace derives only concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, PartialEq)]
enum FieldAttr {
    /// Plain field: required on deserialize.
    None,
    /// `#[serde(default)]`: `Default::default()` when missing.
    Default,
    /// `#[serde(default = "path")]`: call `path()` when missing.
    DefaultPath(String),
    /// `#[serde(skip)]`: never serialized, always defaulted.
    Skip,
}

struct Field {
    name: String,
    attr: FieldAttr,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` (vendored Value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (vendored Value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// --- parsing --------------------------------------------------------------

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tok: &TokenTree, s: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == s)
}

/// Advance past `#[...]` attributes starting at `i`, reporting any serde
/// field attribute seen into `attr`.
fn skip_attrs(toks: &[TokenTree], mut i: usize, attr: &mut FieldAttr) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            parse_attr_body(g.stream(), attr);
        }
        i += 2;
    }
    i
}

/// Inspect one attribute body (`serde(...)`, `doc = "..."`, ...).
fn parse_attr_body(stream: TokenStream, attr: &mut FieldAttr) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() || !is_ident(&toks[0], "serde") {
        return;
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return,
    };
    match inner.first() {
        Some(tok) if is_ident(tok, "skip") => *attr = FieldAttr::Skip,
        Some(tok) if is_ident(tok, "default") => {
            if inner.len() >= 3 && is_punct(&inner[1], '=') {
                let lit = inner[2].to_string();
                let path = lit.trim_matches('"').to_string();
                *attr = FieldAttr::DefaultPath(path);
            } else {
                *attr = FieldAttr::Default;
            }
        }
        other => panic!(
            "serde_derive stub: unsupported serde attribute starting with {:?}",
            other.map(ToString::to_string)
        ),
    }
}

/// Advance past `pub` / `pub(crate)` visibility.
fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut ignored = FieldAttr::None;
    let mut i = skip_attrs(&toks, 0, &mut ignored);
    i = skip_visibility(&toks, i);

    let is_struct = if is_ident(&toks[i], "struct") {
        true
    } else if is_ident(&toks[i], "enum") {
        false
    } else {
        panic!(
            "serde_derive stub: expected `struct` or `enum`, got {}",
            toks[i]
        );
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;

    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_struct {
                Input::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            } else {
                Input::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
            Input::TupleStruct {
                name,
                arity: count_top_level_fields(g.stream()),
            }
        }
        other => panic!(
            "serde_derive stub: unsupported item shape for `{name}` (next token: {:?})",
            other.map(ToString::to_string)
        ),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attr = FieldAttr::None;
        i = skip_attrs(&toks, i, &mut attr);
        i = skip_visibility(&toks, i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, attr });
    }
    fields
}

/// Count comma-separated items at angle-bracket depth 0 (tuple-struct and
/// tuple-variant arity).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut seen_content = false;
    let mut depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if seen_content {
                        count += 1;
                        seen_content = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        seen_content = true;
    }
    if seen_content {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut ignored = FieldAttr::None;
        i = skip_attrs(&toks, i, &mut ignored);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_top_level_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`Read = 0`).
        if i < toks.len() && is_punct(&toks[i], '=') {
            i += 1;
            while i < toks.len() && !is_punct(&toks[i], ',') {
                i += 1;
            }
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// --- code generation ------------------------------------------------------

/// `fields.push(...)` lines for serializing named fields bound as local
/// variables (`prefix` "self." for structs, "" for destructured variants).
fn serialize_named_fields(fields: &[Field], prefix: &str) -> String {
    let mut entries = String::new();
    for f in fields {
        if f.attr == FieldAttr::Skip {
            continue;
        }
        entries.push_str(&format!(
            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&{1}{0})),",
            f.name, prefix
        ));
    }
    format!("::serde::Value::Map(::std::vec::Vec::from([{entries}]))")
}

/// A struct-literal body deserializing named fields out of `map`.
fn deserialize_named_fields(fields: &[Field], ty: &str) -> String {
    let mut body = String::new();
    for f in fields {
        let missing = match &f.attr {
            FieldAttr::None => format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\", \"{}\"))",
                f.name, ty
            ),
            FieldAttr::Default | FieldAttr::Skip => {
                "::std::default::Default::default()".to_string()
            }
            FieldAttr::DefaultPath(path) => format!("{path}()"),
        };
        if f.attr == FieldAttr::Skip {
            body.push_str(&format!("{}: {missing},", f.name));
        } else {
            body.push_str(&format!(
                "{0}: match ::serde::find_field(map, \"{0}\") {{ \
                     ::std::option::Option::Some(value) => ::serde::Deserialize::from_value(value)?, \
                     ::std::option::Option::None => {missing}, \
                 }},",
                f.name
            ));
        }
    }
    body
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let map = serialize_named_fields(fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ {map} }} \
                 }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                // Newtype structs are transparent, as in real serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                    items.join(",")
                )
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let tag = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{tag}(f0) => ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{tag}\"), ::serde::Serialize::to_value(f0))\
                         ])),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{tag}({}) => ::serde::Value::Map(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{tag}\"), \
                                  ::serde::Value::Seq(::std::vec::Vec::from([{}])))\
                             ])),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{tag} {{ {} }} => ::serde::Value::Map(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{tag}\"), {inner})\
                             ])),",
                            binds.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let body = deserialize_named_fields(fields, name);
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                         let map = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?; \
                         ::std::result::Result::Ok({name} {{ {body} }}) \
                     }} \
                 }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?; \
                     if items.len() != {arity} {{ \
                         return ::std::result::Result::Err(::serde::DeError::expected(\"array of {arity}\", \"{name}\")); \
                     }} \
                     ::std::result::Result::Ok({name}({}))",
                    items.join(",")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let tag = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{tag}),"
                    )),
                    VariantKind::Newtype => payload_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{tag}(\
                             ::serde::Deserialize::from_value(_payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{tag}\" => {{ \
                                 let items = _payload.as_array().ok_or_else(|| \
                                     ::serde::DeError::expected(\"array\", \"{name}::{tag}\"))?; \
                                 if items.len() != {n} {{ \
                                     return ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\"array of {n}\", \"{name}::{tag}\")); \
                                 }} \
                                 ::std::result::Result::Ok({name}::{tag}({})) \
                             }},",
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let body = deserialize_named_fields(fields, &format!("{name}::{tag}"));
                        payload_arms.push_str(&format!(
                            "\"{tag}\" => {{ \
                                 let map = _payload.as_map().ok_or_else(|| \
                                     ::serde::DeError::expected(\"map\", \"{name}::{tag}\"))?; \
                                 ::std::result::Result::Ok({name}::{tag} {{ {body} }}) \
                             }},",
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                         match v {{ \
                             ::serde::Value::Str(tag) => match tag.as_str() {{ \
                                 {unit_arms} \
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))), \
                             }}, \
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                                 let (tag, _payload) = &entries[0]; \
                                 match tag.as_str() {{ \
                                     {payload_arms} \
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))), \
                                 }} \
                             }} \
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\
                                 \"variant string or single-entry map\", \"{name}\")), \
                         }} \
                     }} \
                 }}"
            )
        }
    }
}
