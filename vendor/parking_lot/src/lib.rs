//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the small API slice it actually uses: [`Mutex`],
//! [`RwLock`] and [`Condvar`] with parking_lot's poison-free signatures
//! (`lock()` returns the guard directly). Backed by `std::sync`; a poisoned
//! std lock is transparently recovered, matching parking_lot's behavior of
//! not propagating panics through locks.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar::wait`] take
/// the std guard out and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification; the
    /// lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        t.join().unwrap();
        assert!(*lock.lock());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
