//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the authoring API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! with a much simpler engine: each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a fixed measurement window, and the
//! mean ns/iter (plus derived throughput) is printed to stdout. No
//! statistics, plotting, or baseline comparison.
//!
//! Like the real crate, `cargo bench ... -- --test` switches to test mode:
//! every benchmark closure runs exactly once (correctness smoke, no
//! timing window), printing `test <id> ... ok` per bench — what CI's
//! bench-smoke job runs.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit of work per iteration, used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times the closure handed to it by a benchmark function.
pub struct Bencher {
    mean_nanos: f64,
    test_only: bool,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time per call.
    /// In `--test` mode the single warm-up call is the whole run.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: one call, also an estimate of per-iteration cost.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        if self.test_only {
            self.mean_nanos = first.as_nanos() as f64;
            return;
        }

        // Measure for a fixed window, bounded iteration count.
        let window = Duration::from_millis(200);
        let est = first.max(Duration::from_nanos(20));
        let iters = (window.as_nanos() / est.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_nanos = total.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stub's
    /// measurement window is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration work, enabling throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            mean_nanos: 0.0,
            test_only: self.criterion.test_mode,
        };
        f(&mut bencher);
        self.report(&id, bencher.mean_nanos);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            mean_nanos: 0.0,
            test_only: self.criterion.test_mode,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.mean_nanos);
        self
    }

    /// Finish the group (printing happens per-bench; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, mean_nanos: f64) {
        if self.criterion.test_mode {
            println!("test {}/{} ... ok", self.name, id.id);
            self.criterion.benches_run += 1;
            return;
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / mean_nanos; // bytes/ns == GiB-ish/s
                format!("  ({gib:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / mean_nanos * 1e3;
                format!("  ({meps:.1} Melem/s)")
            }
            None => String::new(),
        };
        println!(
            "{}/{: <40} {: >14.1} ns/iter{}",
            self.name, id.id, mean_nanos, rate
        );
        self.criterion.benches_run += 1;
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    benches_run: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            benches_run: 0,
            // `cargo bench ... -- --test` forwards the flag to the bench
            // binary, same contract as the real criterion.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter("bench"), f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub/sum");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_counts() {
        let mut criterion = Criterion {
            benches_run: 0,
            test_mode: false,
        };
        sample_bench(&mut criterion);
        assert_eq!(criterion.benches_run, 2);
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut criterion = Criterion {
            benches_run: 0,
            test_mode: true,
        };
        sample_bench(&mut criterion);
        assert_eq!(criterion.benches_run, 2);
    }
}
