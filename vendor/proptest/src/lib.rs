//! Offline stand-in for the `proptest` crate.
//!
//! Keeps proptest's authoring surface — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy` with `prop_map`/`prop_flat_map`, ranges and
//! tuples as strategies, `collection::vec`, regex-literal string strategies,
//! `any::<T>()`, `Just` — but replaces the engine: cases are generated from
//! a deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible) and failures are reported without shrinking. That trades
//! minimal counterexamples for zero dependencies, which is the right trade
//! for an offline build.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary byte string (test name) and case index.
    pub fn from_seed(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index, expanded by
        // splitmix64 — reproducible across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform index in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recoverable test-case failure (what `prop_assert*` produce).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Record a failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drive one property test: used by the `proptest!` macro expansion.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        let mut rng = TestRng::from_seed(test_name, i);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {i}/{}: {e}",
                config.cases
            );
        }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// --- primitive strategies -------------------------------------------------

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical full-range strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite and sign-symmetric; magnitudes up to 1e9.
        rng.unit_f64() * 2e9 - 1e9
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `Vec` of strategies generates element-wise (proptest semantics).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String-literal strategies: the pattern is a regex-lite generator.
///
/// Supported syntax (covers the workspace's patterns): literal characters,
/// `[...]` classes with ranges and literal members, `.` (printable ASCII),
/// and the quantifiers `{n}`, `{n,m}`, `*`, `+`, `?` (star/plus capped at 8
/// repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class, an escaped char, `.`, or a literal.
        let atom: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                let members = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                members
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing `\\` in pattern `{pattern}`"));
                i += 2;
                vec![c]
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().unwrap_or(0),
                        b.trim().parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        for _ in 0..count {
            let pick = rng.below(atom.len() as u64) as usize;
            out.push(atom[pick]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern `{pattern}`");
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in pattern `{pattern}`");
            for c in lo..=hi {
                members.push(c);
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy with a random length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — proptest's vector strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// --- macros ---------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property test; failure reports the case, no shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left != *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left != *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{}): {}",
                left,
                right,
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{}): {}",
                left,
                right,
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` block
/// becomes a normal unit test running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ @config ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ @config ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@config ($config:expr); ) => {};
    (@config ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_tests!{ @config ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::from_seed("t", 3);
        let mut b = TestRng::from_seed("t", 3);
        let mut c = TestRng::from_seed("t", 4);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn pattern_strategies_match_their_shape() {
        let mut rng = TestRng::from_seed("pat", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[A-Za-z][A-Za-z0-9.]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || c == '.'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, y in 0.25f64..0.75, v in proptest::collection::vec(0u8..4, 2..9)) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|b| *b < 4));
        }

        #[test]
        fn oneof_and_maps_compose(v in prop_oneof![Just(1u8), 10u8..20, any::<u8>().prop_map(|b| b / 2)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v <= 127);
        }
    }

    // `proptest` here names this crate itself, as tests shorthand it.
    use crate as proptest;
}
