//! Offline stand-in for `serde_json`, layered on the vendored `serde`'s
//! [`Value`] tree: `to_string`/`to_string_pretty`/`to_vec` render a
//! `Serialize` type's `Value` as JSON text; `from_str`/`from_slice` parse
//! JSON with a strict recursive-descent parser and rebuild the type through
//! `Deserialize`. Object key order is preserved both ways, so serialization
//! is byte-for-byte deterministic.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Render `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Render `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON bytes (UTF-8 validated) into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --- writer ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting.
                out.push_str(&x.to_string())
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The whole input was validated as UTF-8 up front, and this
                // run breaks only at ASCII delimiters, so it stays valid.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new(format!(
                        "unescaped control character 0x{b:02x} in string"
                    )))
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::F64(x))
        } else if negative {
            let n: i64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::U64(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nquote\"slash\\tab\tüñí©ødé \u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Map(vec![("a".to_string(), Value::Seq(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("123 456").is_err());
        assert!(from_slice::<Value>(&[b'"', 0xFF, b'"']).is_err());
    }
}
