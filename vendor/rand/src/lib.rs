//! Offline stand-in for the `rand` crate (0.8 API slice).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges — the surface the repo's
//! deterministic test-data generators use. The generator is xoshiro256**
//! seeded via splitmix64; it is *not* the real StdRng stream, which is fine
//! because every caller seeds explicitly and only needs reproducibility
//! within this codebase.

/// Core uniform-random-bits source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as rand itself seeds small states.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
