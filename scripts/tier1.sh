#!/usr/bin/env bash
# Tier-1 gate: run this before sending a change.
#   1. formatting        cargo fmt --check
#   2. lints             cargo clippy, whole workspace, warnings denied
#   3. tier-1 verify     release build + tests (see ROADMAP.md)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "tier1: OK"
