#!/usr/bin/env bash
# Tier-1 gate: run this before sending a change.
#   1. formatting        cargo fmt --check
#   2. lints             cargo clippy, whole workspace, warnings denied
#   3. tier-1 verify     release build + tests (see ROADMAP.md)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
# --workspace matters: the root package does not depend on the `dsspy`
# binary, so a bare `cargo build` would leave target/release/dsspy stale.
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> telemetry smoke (demo -> analyze --telemetry -> prometheus --check)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/dsspy demo "$SMOKE_DIR/smoke.dsspycap" >/dev/null
./target/release/dsspy analyze "$SMOKE_DIR/smoke.dsspycap" \
    --telemetry "$SMOKE_DIR/smoke.telemetry.json" >/dev/null
test -s "$SMOKE_DIR/smoke.telemetry.json"
# --check validates the Prometheus exposition; a malformed export fails here.
./target/release/dsspy telemetry "$SMOKE_DIR/smoke.dsspycap" \
    --format prometheus --check >/dev/null

echo "==> streaming smoke (demo --live -> watch -> telemetry serve --self-check)"
# --live folds the demo session through the collector tap while it runs and
# fails if the streaming verdicts diverge from the post-mortem analysis.
./target/release/dsspy demo "$SMOKE_DIR/live.dsspycap" --live >/dev/null
# Bounded replay: a handful of frames, then the same convergence check.
./target/release/dsspy watch "$SMOKE_DIR/live.dsspycap" \
    --batch 256 --frames 4 >/dev/null
# Curl-free scrape check: the server scrapes itself over TCP, validates the
# exposition, and exits after one request (port 0 = ephemeral, no clashes).
./target/release/dsspy telemetry serve "$SMOKE_DIR/live.dsspycap" \
    --addr 127.0.0.1:0 --requests 1 --self-check >/dev/null

echo "tier1: OK"
