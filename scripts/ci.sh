#!/usr/bin/env bash
# CI gate: the tier-1 gate plus the matrix tier-1 cannot see.
#
#   full        scripts/tier1.sh, then the whole test suite re-run at
#               DSSPY_TEST_THREADS=1/2/4 in debug AND release (the report
#               must be identical at every analysis width — this varies how
#               it is computed, never what comes out), then explicit
#               --threads CLI runs, the live-scrape smoke
#               (`telemetry serve --live --self-check`) and the follow
#               smoke (`watch --follow`), then every Criterion bench once.
#   matrix      only the 2x3 debug/release x threads test matrix.
#   bench-smoke only the Criterion benches, one pass each (`-- --test`).
#
# Everything runs against the vendored in-tree dependencies; no network.
# A machine-readable summary (schema: DESIGN.md, "ci-summary.json") is
# written to --out; the exit code is 0 iff every cell passed.
#
#   scripts/ci.sh [--mode full|matrix|bench-smoke] [--out PATH]
set -uo pipefail # deliberately not -e: later cells still run after a failure
cd "$(dirname "$0")/.."

MODE="full"
OUT="ci-summary.json"
while [[ $# -gt 0 ]]; do
    case "$1" in
    --mode)
        MODE="${2:?--mode needs a value}"
        shift 2
        ;;
    --out)
        OUT="${2:?--out needs a value}"
        shift 2
        ;;
    *)
        echo "usage: scripts/ci.sh [--mode full|matrix|bench-smoke] [--out PATH]" >&2
        exit 2
        ;;
    esac
done
case "$MODE" in full | matrix | bench-smoke) ;; *)
    echo "ci: unknown mode '$MODE'" >&2
    exit 2
    ;;
esac

CELLS_FILE="$(mktemp)"
LOG_DIR="$(mktemp -d)"
trap 'rm -rf "$CELLS_FILE" "$LOG_DIR"' EXIT
OVERALL=0
STARTED="$(date +%s)"

# One line, JSON-string-safe: escape backslashes and quotes, flatten
# newlines/tabs/CRs.
json_escape() {
    tr '\n\r\t' '   ' | sed -e 's/\\/\\\\/g' -e 's/"/\\"/g'
}

# run_cell NAME EXTRA_JSON_FIELDS CMD...
# Runs CMD, captures its output, appends one JSON object (one per line) to
# CELLS_FILE: {"name":..., EXTRA, "ok":..., "seconds":..., "last_line":...}.
run_cell() {
    local name="$1" extra="$2"
    shift 2
    local log="$LOG_DIR/cell-$name.log" t0 t1 ok last
    echo "==> [$name] $*"
    t0="$(date +%s)"
    if "$@" >"$log" 2>&1; then
        ok=true
    else
        ok=false
        OVERALL=1
        echo "ci: cell '$name' FAILED; last lines:" >&2
        tail -n 20 "$log" >&2
    fi
    t1="$(date +%s)"
    last="$(tail -n 1 "$log" | json_escape)"
    printf '{"name":"%s",%s"ok":%s,"seconds":%s,"last_line":"%s"}\n' \
        "$name" "$extra" "$ok" "$((t1 - t0))" "$last" >>"$CELLS_FILE"
}

if [[ "$MODE" == "full" ]]; then
    run_cell tier1 '"kind":"gate",' ./scripts/tier1.sh
fi

if [[ "$MODE" == "full" || "$MODE" == "matrix" ]]; then
    # The library-level matrix: DSSPY_TEST_THREADS pins every default-width
    # analysis in the suite to N workers (crates/core resolved_threads).
    for profile in debug release; do
        for t in 1 2 4; do
            extra="$(printf '"kind":"test","profile":"%s","threads":%s,' "$profile" "$t")"
            if [[ "$profile" == release ]]; then
                run_cell "test-$profile-threads$t" "$extra" \
                    env DSSPY_TEST_THREADS="$t" cargo test -q --release
            else
                run_cell "test-$profile-threads$t" "$extra" \
                    env DSSPY_TEST_THREADS="$t" cargo test -q
            fi
        done
    done
fi

if [[ "$MODE" == "full" ]]; then
    # CLI-level matrix + live smokes against the release binary tier1 built.
    SMOKE="$LOG_DIR/ci-smoke.dsspycap"
    run_cell demo-capture '"kind":"smoke",' ./target/release/dsspy demo "$SMOKE"
    for t in 1 2 4; do
        run_cell "analyze-threads$t" \
            "$(printf '"kind":"smoke","threads":%s,' "$t")" \
            ./target/release/dsspy analyze "$SMOKE" --threads "$t"
    done
    # The scrape endpoint attached to a *running* session: re-collects the
    # capture live, serves a fresh validated exposition per scrape, scrapes
    # itself over TCP, and fails unless all three fan-out subscribers
    # converge with the post-mortem analysis.
    run_cell live-scrape-smoke '"kind":"smoke",' \
        ./target/release/dsspy telemetry serve "$SMOKE" --live \
        --addr 127.0.0.1:0 --requests 1 --self-check
    # Follow a live workload session through the same fan-out.
    run_cell watch-follow-smoke '"kind":"smoke",' \
        ./target/release/dsspy watch --follow --frames 3
    # Flight-recorder + doctor smoke: a clean live demo with the recorder
    # armed must produce a dump `doctor` reads back with zero incidents
    # (exit 0) ...
    FLIGHT="$LOG_DIR/ci-flight.json"
    run_cell demo-flight-recorder '"kind":"smoke",' \
        ./target/release/dsspy demo "$SMOKE" --live --flight-recorder "$FLIGHT"
    run_cell doctor-clean '"kind":"smoke",' \
        ./target/release/dsspy doctor "$FLIGHT"
    # ... and the forced-incident run (--inject-panic poisons one fan-out
    # subscriber) must make doctor exit exactly 1 with an UNHEALTHY verdict
    # that names the panicking subscriber.
    run_cell doctor-incident '"kind":"smoke",' \
        bash -c '
            set -uo pipefail
            smoke="$1" flight="$2"
            ./target/release/dsspy demo "$smoke" --live \
                --flight-recorder "$flight" --inject-panic >/dev/null || exit 1
            out="$(./target/release/dsspy doctor "$flight")"
            code=$?
            [[ "$code" -eq 1 ]] || { echo "doctor exit $code, want 1"; exit 1; }
            grep -q "UNHEALTHY" <<<"$out" || { echo "no UNHEALTHY verdict"; exit 1; }
            grep -q "subscriber bomb" <<<"$out" || { echo "panicking subscriber not named"; exit 1; }
            echo "doctor reconstructed the injected incident (exit 1 as required)"
        ' doctor-incident "$SMOKE" "$FLIGHT"
fi

if [[ "$MODE" == "full" || "$MODE" == "bench-smoke" ]]; then
    # One correctness pass over every Criterion bench (no timing window).
    benches="$(grep -A1 '^\[\[bench\]\]' crates/bench/Cargo.toml |
        sed -n 's/^name = "\(.*\)"/\1/p')"
    for bench in $benches; do
        run_cell "bench-smoke-$bench" '"kind":"bench",' \
            cargo bench -p dsspy-bench --bench "$bench" -- --test
    done
fi

FINISHED="$(date +%s)"
VERSION="$(sed -n 's/^version = "\(.*\)"$/\1/p' Cargo.toml | head -n 1)"
OK_JSON=$([[ "$OVERALL" -eq 0 ]] && echo true || echo false)
{
    printf '{\n'
    printf '  "schema": "dsspy-ci-summary/1",\n'
    printf '  "dsspy_version": "%s",\n' "$VERSION"
    printf '  "mode": "%s",\n' "$MODE"
    printf '  "started_unix": %s,\n' "$STARTED"
    printf '  "finished_unix": %s,\n' "$FINISHED"
    printf '  "ok": %s,\n' "$OK_JSON"
    printf '  "cells": [\n'
    sed -e 's/^/    /' -e '$!s/$/,/' "$CELLS_FILE"
    printf '  ]\n'
    printf '}\n'
} >"$OUT"

echo "ci: mode=$MODE ok=$OK_JSON summary=$OUT"
exit "$OVERALL"
